"""Typed, timestamped structured trace events and the ``Tracer`` protocol.

The paper's contribution is making interference *observable*: per-epoch
``ReT``, ``Q_i`` and ``E_S`` feed ARQ's move/rollback/cooldown loop. This
module gives every step of that loop a typed event so a run can be watched
as it unfolds — from the CLI (``--trace``/``--verbose``), from tests, or
from any :class:`Tracer` a caller attaches.

Design rules:

* **Simulation time only.** Events carry the simulated clock (``time_s``),
  never wall-clock timestamps, so traces are bit-identical across repeated
  runs and across ``--jobs`` settings.
* **Zero overhead when disabled.** Emitting sites hold an
  ``Optional[Tracer]`` and guard event *construction* behind a ``None``
  check; a run without a tracer executes exactly the pre-observability
  code path.
* **Round-trippable.** Every event serialises to a flat JSON-safe dict via
  :meth:`TraceEvent.to_dict` and back via :func:`event_from_dict`.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, ClassVar, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Event count past which :class:`CollectingTracer` warns that
#: collect-everything tracing should give way to the bounded
#: :class:`~repro.obs.windows.WindowedTracer`.
COLLECT_WARN_THRESHOLD = 200_000

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        """Fallback decorator when ``typing.Protocol`` is unavailable."""
        return cls


@runtime_checkable
class Tracer(Protocol):
    """Anything that accepts trace events.

    The contract is one method: :meth:`emit` receives each
    :class:`TraceEvent` in emission order. Implementations must not reorder
    or drop events if they want the determinism guarantees to hold
    downstream (the JSONL writer, the narrator and the collecting tracer
    all preserve order).
    """

    def emit(self, event: "TraceEvent") -> None:
        """Receive one trace event."""
        ...


#: Registry of event kinds, filled by ``__init_subclass__``.
EVENT_KINDS: Dict[str, type] = {}


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events: a kind tag plus a simulation time.

    ``kind`` is a class attribute (stable wire name); ``time_s`` is the
    simulated clock at emission. Subclasses add flat, JSON-safe fields
    (numbers, strings, bools, and dicts/tuples of those).
    """

    kind: ClassVar[str] = "event"

    time_s: float

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind")
        if kind is not None:
            EVENT_KINDS[kind] = cls

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-safe dict including the ``kind`` discriminator."""
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


def event_from_dict(payload: Mapping[str, Any]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from :meth:`TraceEvent.to_dict` output.

    Raises :class:`~repro.errors.ConfigurationError` for unknown kinds or
    payloads that do not match the event's fields — a trace written by a
    newer version fails loudly instead of silently dropping data.
    """
    kind = payload.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown trace event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    kwargs = {key: value for key, value in payload.items() if key != "kind"}
    unknown = set(kwargs) - names
    if unknown:
        raise ConfigurationError(
            f"unexpected fields {sorted(unknown)} for event kind {kind!r}"
        )
    try:
        event = cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"malformed payload for event kind {kind!r}: {exc}"
        ) from exc
    # Tuples arrive back as lists from JSON; normalise so round-trips
    # compare equal.
    return _normalise(event)


def _normalise(event: TraceEvent) -> TraceEvent:
    """Coerce JSON list fields back into the tuples the dataclasses use."""
    updates = {}
    for f in fields(event):
        value = getattr(event, f.name)
        if isinstance(value, list):
            updates[f.name] = tuple(value)
    if not updates:
        return event
    kwargs = {f.name: getattr(event, f.name) for f in fields(event)}
    kwargs.update(updates)
    return type(event)(**kwargs)


# -- run lifecycle -----------------------------------------------------------


@dataclass(frozen=True)
class RunStarted(TraceEvent):
    """Emitted once before the first epoch of a collocation run."""

    kind: ClassVar[str] = "run_started"

    scheduler: str = ""
    lc_apps: Tuple[str, ...] = ()
    be_apps: Tuple[str, ...] = ()
    duration_s: float = 0.0
    warmup_s: float = 0.0
    epoch_s: float = 0.0
    seed: int = 0


@dataclass(frozen=True)
class RunFinished(TraceEvent):
    """Emitted once after the last epoch, with the run's headline summary."""

    kind: ClassVar[str] = "run_finished"

    scheduler: str = ""
    epochs: int = 0
    mean_e_s: float = 0.0
    mean_e_lc: float = 0.0
    mean_e_be: float = 0.0
    violations: int = 0


# -- per-epoch measurements --------------------------------------------------


@dataclass(frozen=True)
class EpochMeasured(TraceEvent):
    """One monitoring epoch's full measurement: entropies, tails, IPCs."""

    kind: ClassVar[str] = "epoch_measured"

    epoch: int = 0
    e_s: float = 0.0
    e_lc: float = 0.0
    e_be: float = 0.0
    loads: Mapping[str, float] = None  # type: ignore[assignment]
    tails_ms: Mapping[str, float] = None  # type: ignore[assignment]
    ipcs: Mapping[str, float] = None  # type: ignore[assignment]
    violations: int = 0


@dataclass(frozen=True)
class QoSViolation(TraceEvent):
    """An LC application exceeded its tail-latency threshold this epoch."""

    kind: ClassVar[str] = "qos_violation"

    epoch: int = 0
    application: str = ""
    tail_ms: float = 0.0
    threshold_ms: float = 0.0


# -- scheduler decisions -----------------------------------------------------


@dataclass(frozen=True)
class SchedulerDecision(TraceEvent):
    """The scheduler's verdict for the next epoch (changed plan or no-op)."""

    kind: ClassVar[str] = "scheduler_decision"

    epoch: int = 0
    scheduler: str = ""
    plan_changed: bool = False
    plan: str = ""


@dataclass(frozen=True)
class ResourceMove(TraceEvent):
    """One resource adjustment between regions (ARQ/PARTIES/Heracles)."""

    kind: ClassVar[str] = "resource_move"

    scheduler: str = ""
    resource: str = ""
    source: str = ""
    destination: str = ""
    amount: float = 0.0
    reason: str = ""


@dataclass(frozen=True)
class Rollback(TraceEvent):
    """A previous adjustment was cancelled (entropy/slack feedback)."""

    kind: ClassVar[str] = "rollback"

    scheduler: str = ""
    resource: str = ""
    source: str = ""
    destination: str = ""
    amount: float = 0.0
    reason: str = ""


@dataclass(frozen=True)
class CooldownStart(TraceEvent):
    """A region becomes protected from penalisation until ``until_s``."""

    kind: ClassVar[str] = "cooldown_start"

    scheduler: str = ""
    region: str = ""
    until_s: float = 0.0


@dataclass(frozen=True)
class CooldownEnd(TraceEvent):
    """A region's penalty protection lapsed."""

    kind: ClassVar[str] = "cooldown_end"

    scheduler: str = ""
    region: str = ""


@dataclass(frozen=True)
class FSMTransition(TraceEvent):
    """A resource-type FSM advanced to a new state (§IV-B / PARTIES §4)."""

    kind: ClassVar[str] = "fsm_transition"

    owner: str = ""
    from_resource: str = ""
    to_resource: str = ""


@dataclass(frozen=True)
class SearchProgress(TraceEvent):
    """A search-based scheduler's phase update (CLITE's GP loop)."""

    kind: ClassVar[str] = "search_progress"

    scheduler: str = ""
    phase: str = ""  # "sampling" | "searching" | "pinned" | "restarted"
    evaluations: int = 0
    best_score: float = 0.0


# -- fault injection ---------------------------------------------------------


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A fault from the active :class:`~repro.faults.plan.FaultPlan` began."""

    kind: ClassVar[str] = "fault_injected"

    fault: str = ""
    targets: Tuple[str, ...] = ()
    until_s: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class FaultCleared(TraceEvent):
    """A previously injected fault's window ended."""

    kind: ClassVar[str] = "fault_cleared"

    fault: str = ""
    targets: Tuple[str, ...] = ()
    detail: str = ""


@dataclass(frozen=True)
class TelemetryGap(TraceEvent):
    """An epoch had no usable telemetry; the scheduler skipped the interval."""

    kind: ClassVar[str] = "telemetry_gap"

    scheduler: str = ""
    held: int = 0
    dropped: int = 0


@dataclass(frozen=True)
class TelemetryRepaired(TraceEvent):
    """Corrupt/missing samples were repaired from last-good values."""

    kind: ClassVar[str] = "telemetry_repaired"

    scheduler: str = ""
    fresh: int = 0
    held: int = 0
    dropped: int = 0


@dataclass(frozen=True)
class DecisionSkipped(TraceEvent):
    """A scheduler decision was discarded (failure or invalid plan)."""

    kind: ClassVar[str] = "decision_skipped"

    scheduler: str = ""
    reason: str = ""  # "decide_failed" | "invalid_plan"
    detail: str = ""


# -- datacenter / cluster recovery -------------------------------------------


@dataclass(frozen=True)
class NodeQuarantined(TraceEvent):
    """The coordinator quarantined a node after a failure or deadline miss.

    ``node`` is the global node index, ``reason`` a stable cause tag
    (``"crash"``, ``"straggler"``, ``"run_failed"``, ...), ``until_epoch``
    the first global epoch the node may serve again (its probation
    start) and ``epoch`` the global epoch the decision was made at.
    """

    kind: ClassVar[str] = "node_quarantined"

    node: int = 0
    epoch: int = 0
    until_epoch: int = 0
    reason: str = ""
    detail: str = ""


@dataclass(frozen=True)
class NodeRecovered(TraceEvent):
    """A quarantined node served its sentence and re-entered service.

    Emitted at the start of the global epoch the node rejoins at; the
    node runs on probation for ``probation_epochs`` further epochs.
    """

    kind: ClassVar[str] = "node_recovered"

    node: int = 0
    epoch: int = 0
    probation_epochs: int = 0


@dataclass(frozen=True)
class CheckpointWritten(TraceEvent):
    """The epoch loop persisted a resumable checkpoint snapshot.

    ``next_epoch`` is where a resumed run would continue; ``epochs`` the
    number of completed epoch records the snapshot carries.
    """

    kind: ClassVar[str] = "checkpoint_written"

    path: str = ""
    next_epoch: int = 0
    epochs: int = 0


# -- verification ------------------------------------------------------------


@dataclass(frozen=True)
class InvariantViolation(TraceEvent):
    """A runtime invariant failed (emitted by ``repro.check``'s tracer).

    ``invariant`` is a stable identifier (``resource_conservation``,
    ``entropy_eq7``, ``arq_move_budget``, ...), ``scheduler`` names the
    strategy under check, ``epoch`` the monitoring interval (-1 when the
    violation is not tied to one) and ``detail`` the human-readable
    evidence.
    """

    kind: ClassVar[str] = "invariant_violation"

    invariant: str = ""
    scheduler: str = ""
    epoch: int = -1
    detail: str = ""


# -- discrete-event engine ---------------------------------------------------


@dataclass(frozen=True)
class SimCallbackExecuted(TraceEvent):
    """One discrete-event callback executed by :class:`repro.sim.engine.Engine`."""

    kind: ClassVar[str] = "sim_callback_executed"

    label: str = ""
    sequence: int = 0


# -- tracer implementations --------------------------------------------------


class NullTracer:
    """A tracer that discards everything (explicit-object alternative to
    passing ``tracer=None``)."""

    def emit(self, event: TraceEvent) -> None:
        """Discard the event."""


class CollectingTracer:
    """A tracer that appends every event to an in-memory list.

    Memory grows with the event count — O(events), unbounded by default —
    which cannot survive million-event traces. Crossing
    :data:`COLLECT_WARN_THRESHOLD` events raises a
    :class:`DeprecationWarning` (once per instance) pointing at the
    bounded replacement, :class:`~repro.obs.windows.WindowedTracer`, and
    the streaming helpers in :mod:`repro.obs.stream`. ``max_events`` puts
    a hard cap on the collection: events past it raise
    :class:`~repro.errors.MeasurementError` instead of silently eating
    the heap.

    Keep using it for short runs and tests (the parallel runner still
    collects per-point events worker-side, where a point's stream is
    small); switch to windows for anything long.
    """

    def __init__(self, *, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"max_events must be positive: {max_events}"
            )
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self._warned = False

    def emit(self, event: TraceEvent) -> None:
        """Append the event to :attr:`events` (bounded by ``max_events``)."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            from repro.errors import MeasurementError

            raise MeasurementError(
                f"CollectingTracer exceeded max_events={self.max_events}; "
                "use repro.obs.windows.WindowedTracer for bounded-memory "
                "aggregation of long runs"
            )
        self.events.append(event)
        if not self._warned and len(self.events) > COLLECT_WARN_THRESHOLD:
            self._warned = True
            warnings.warn(
                f"CollectingTracer holds over {COLLECT_WARN_THRESHOLD} events "
                "in memory; collect-everything tracing is deprecated for "
                "long runs — fold into bounded windows with "
                "repro.obs.windows.WindowedTracer (or stream to disk with "
                "repro.obs.export.JsonlTraceWriter)",
                DeprecationWarning,
                stacklevel=2,
            )

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """The collected events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class CompositeTracer:
    """Fan one event stream out to several tracers, in order."""

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers: Tuple[Tracer, ...] = tuple(t for t in tracers if t is not None)

    def emit(self, event: TraceEvent) -> None:
        """Forward the event to every member tracer."""
        for tracer in self.tracers:
            tracer.emit(event)


class CallbackTracer:
    """Adapt a plain callable into a :class:`Tracer`."""

    def __init__(self, callback: Callable[[TraceEvent], None]) -> None:
        self._callback = callback

    def emit(self, event: TraceEvent) -> None:
        """Invoke the wrapped callable with the event."""
        self._callback(event)


def compose_tracers(*tracers: Optional[Tracer]) -> Optional[Tracer]:
    """Combine tracers, eliding ``None``s; returns ``None`` when all are.

    The single-tracer case returns the tracer itself (no wrapper object),
    keeping the common path allocation-free.
    """
    present = [t for t in tracers if t is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return CompositeTracer(*present)
