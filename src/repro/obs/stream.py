"""Lazy trace streaming: iterate, replay and fold without buffering.

The counterpart to :mod:`repro.obs.windows` for traces that already
live on disk: JSONL trace files written by
:class:`~repro.obs.export.JsonlTraceWriter` can be re-read one event at
a time (:func:`iter_trace`), pushed through any set of tracers
(:func:`replay`) or folded straight into a bounded
:class:`~repro.obs.windows.WindowSummary` (:func:`fold_trace`) — none of
which ever holds more than one event in memory at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.errors import MeasurementError
from repro.obs.events import TraceEvent, Tracer, event_from_dict
from repro.obs.windows import WindowConfig, WindowedTracer, WindowSummary

#: Anything :func:`iter_trace` accepts: a path or an event iterable.
TraceSource = Union[str, Path, Iterable[TraceEvent]]


def iter_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Yield events from a JSONL trace file one at a time.

    Unlike :func:`repro.obs.export.read_trace`, which materialises the
    whole trace as a list, this generator keeps a single event in memory
    — suitable for the million-event traces windows are built for.
    """
    trace_path = Path(path)
    with trace_path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MeasurementError(
                    f"{trace_path}:{line_number}: invalid trace JSON: {exc}"
                ) from exc
            yield event_from_dict(payload)


def events_of(source: TraceSource) -> Iterable[TraceEvent]:
    """Normalise a path or event iterable into an event iterable."""
    if isinstance(source, (str, Path)):
        return iter_trace(source)
    return source


def replay(source: TraceSource, *tracers: Tracer) -> int:
    """Push every event from ``source`` through ``tracers``, in order.

    Returns the number of events replayed. Events stream one at a time,
    so replaying a multi-gigabyte trace through a
    :class:`~repro.obs.windows.WindowedTracer` or a
    :class:`~repro.check.invariants.CheckingTracer` stays at O(1)
    event memory.
    """
    count = 0
    for event in events_of(source):
        for tracer in tracers:
            tracer.emit(event)
        count += 1
    return count


def fold_trace(
    source: TraceSource,
    config: Optional[WindowConfig] = None,
) -> WindowSummary:
    """Fold a trace (file or iterable) into a bounded window summary.

    The one-call path from a recorded trace to ``why_slow``-ready
    windows: ``why_slow(fold_trace("run.jsonl", cfg), t0, t1)``.
    """
    tracer = WindowedTracer(config=config)
    replay(source, tracer)
    return tracer.summary()
