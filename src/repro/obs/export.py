"""Exporters and the live narrator: JSONL traces, metric files, run dumps.

Three families live here:

* **Trace I/O** — :class:`JsonlTraceWriter` streams events to a JSON-lines
  file (one sorted-key object per line, so traces diff cleanly and are
  byte-identical across ``--jobs`` settings); :func:`read_trace` loads a
  file back into typed events; :func:`write_trace` dumps a collected list.
* **Metric exporters** — :func:`write_metrics_prometheus` (Prometheus text
  exposition format) and :func:`write_metrics_csv` for a
  :class:`~repro.obs.metrics.MetricsRegistry`.
* **Window exporters** — :func:`write_windows_csv` /
  :func:`write_windows_jsonl` / :func:`write_windows_prometheus` dump a
  :class:`~repro.obs.windows.WindowSummary`'s bounded per-window
  aggregates; all share the keyword-only ``path``/``append`` tail.
* **The console and narrator** — :class:`Console` is the single stdout
  gate for the whole package (``--quiet`` silences it);
  :class:`NarratorTracer` renders the event stream as human-readable
  lines, replacing the scattered ``print()`` calls the experiments used
  to make.

The per-epoch run exporters (:func:`epochs_to_rows`, :func:`write_csv`,
:func:`write_json`, :func:`summary_dict`) moved here from
``repro.cluster.export``; the old module remains as a deprecation shim.
"""

from __future__ import annotations

import csv
import json
import pathlib
import sys
import warnings
from typing import TYPE_CHECKING, Any, Dict, IO, Iterable, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.events import (
    CooldownEnd,
    CooldownStart,
    DecisionSkipped,
    EpochMeasured,
    FaultCleared,
    FaultInjected,
    FSMTransition,
    InvariantViolation,
    QoSViolation,
    ResourceMove,
    Rollback,
    RunFinished,
    RunStarted,
    SchedulerDecision,
    SearchProgress,
    TelemetryGap,
    TelemetryRepaired,
    TraceEvent,
    event_from_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import WindowSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (run.py emits events)
    from repro.cluster.run import RunResult

PathLike = Union[str, pathlib.Path]


def _adopt_positional(
    cls_name: str,
    names: tuple,
    args: tuple,
    kwargs: Dict[str, Any],
) -> Dict[str, Any]:
    """Map deprecated positional constructor arguments onto keywords.

    Every exporter constructor shares the keyword-only convention (the
    same redesign the schedulers went through: a common ``path``/
    ``append`` tail). Old positional call sites keep working through this
    shim, with a :class:`DeprecationWarning` naming the replacement.
    """
    if not args:
        return kwargs
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name} takes at most {len(names)} arguments ({len(args)} given)"
        )
    warnings.warn(
        f"positional {cls_name}(...) arguments are deprecated; use keyword "
        f"arguments: {cls_name}({', '.join(f'{n}=...' for n in names[:len(args)])})",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if name in kwargs:
            raise TypeError(f"{cls_name} got multiple values for argument {name!r}")
        kwargs[name] = value
    return kwargs


# -- trace I/O ---------------------------------------------------------------


def event_to_json(event: TraceEvent) -> str:
    """One event as a canonical (sorted-key, compact) JSON line."""
    return json.dumps(
        event.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class JsonlTraceWriter:
    """A tracer that appends one canonical JSON line per event to a file.

    Usable as a context manager; :meth:`close` is idempotent. Lines are
    written in emission order with sorted keys, so two traces of the same
    run are byte-identical.

    Arguments are keyword-only (``path=...``, ``append=...``) — the
    common exporter tail; positional calls still work behind a
    :class:`DeprecationWarning`. ``append=True`` opens the file in append
    mode so several runs can share one trace file.
    """

    def __init__(
        self,
        *args: Any,
        path: Optional[PathLike] = None,
        append: Optional[bool] = None,
    ) -> None:
        given: Dict[str, Any] = {}
        if path is not None:
            given["path"] = path
        if append is not None:
            given["append"] = append
        resolved = _adopt_positional(
            "JsonlTraceWriter", ("path", "append"), args, given
        )
        if resolved.get("path") is None:
            raise TypeError("JsonlTraceWriter requires a path= argument")
        self.path = pathlib.Path(resolved["path"])
        self.append = bool(resolved.get("append", False))
        self._handle: Optional[IO[str]] = self.path.open(
            "a" if self.append else "w"
        )
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        """Write one event as a JSON line."""
        if self._handle is None:
            raise ConfigurationError(
                f"trace writer for {self.path} is already closed"
            )
        self._handle.write(event_to_json(event) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_trace(events: Iterable[TraceEvent], path: PathLike) -> pathlib.Path:
    """Write an event sequence as a JSONL trace; returns the path."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        for event in events:
            handle.write(event_to_json(event) + "\n")
    return path


def read_trace(path: PathLike) -> List[TraceEvent]:
    """Load a JSONL trace back into typed events, in file order."""
    path = pathlib.Path(path)
    events: List[TraceEvent] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from exc
            events.append(event_from_dict(payload))
    return events


# -- metric exporters --------------------------------------------------------


def _prometheus_name(name: str) -> str:
    """Sanitise a registry name into a Prometheus metric name."""
    cleaned = []
    for ch in name:
        cleaned.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(cleaned)
    if text and text[0].isdigit():
        text = "_" + text
    return "repro_" + text


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms become
    summary-style ``_count``/``_sum`` samples plus quantile series.
    """
    lines: List[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = _prometheus_name(name)
        if counter.help:
            lines.append(f"# HELP {metric} {counter.help}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value:g}")
    for name, gauge in sorted(registry.gauges.items()):
        if not gauge.is_set:
            continue
        metric = _prometheus_name(name)
        if gauge.help:
            lines.append(f"# HELP {metric} {gauge.help}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauge.value:.17g}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = _prometheus_name(name)
        if histogram.help:
            lines.append(f"# HELP {metric} {histogram.help}")
        lines.append(f"# TYPE {metric} summary")
        for q in (0.5, 0.9, 0.95, 0.99):
            value = histogram.percentile(q * 100.0) if histogram.count else 0.0
            lines.append(f'{metric}{{quantile="{q:g}"}} {value:.17g}')
        lines.append(f"{metric}_sum {histogram.total:.17g}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def write_metrics_prometheus(
    registry: MetricsRegistry, path: PathLike
) -> pathlib.Path:
    """Write the registry as Prometheus text; returns the path."""
    path = pathlib.Path(path)
    path.write_text(metrics_to_prometheus(registry))
    return path


def write_metrics_csv(registry: MetricsRegistry, path: PathLike) -> pathlib.Path:
    """Write the registry as ``metric,type,field,value`` CSV rows."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "type", "field", "value"])
        for name, counter in sorted(registry.counters.items()):
            writer.writerow([name, "counter", "value", repr(counter.value)])
        for name, gauge in sorted(registry.gauges.items()):
            if gauge.is_set:
                writer.writerow([name, "gauge", "value", repr(gauge.value)])
        for name, histogram in sorted(registry.histograms.items()):
            for key, value in histogram.summary().items():
                writer.writerow([name, "histogram", key, repr(value)])
    return path


def write_metrics(registry: MetricsRegistry, path: PathLike) -> pathlib.Path:
    """Write metrics, picking the format from the extension.

    ``.csv`` selects CSV; anything else (``.prom``, ``.txt``, …) selects
    the Prometheus text format.
    """
    path = pathlib.Path(path)
    if path.suffix.lower() == ".csv":
        return write_metrics_csv(registry, path)
    return write_metrics_prometheus(registry, path)


# -- the console -------------------------------------------------------------


class Console:
    """The single gate through which user-facing text reaches a stream.

    Experiments and the CLI route everything through :func:`say` so that
    one flag (``--quiet``) silences the whole package. The default stream
    is resolved at call time (so pytest's ``capsys`` and shell
    redirections behave normally). Arguments are keyword-only
    (``stream=...``, ``quiet=...``); positional calls still work behind a
    :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        *args: Any,
        stream: Optional[IO[str]] = None,
        quiet: Optional[bool] = None,
    ) -> None:
        given: Dict[str, Any] = {}
        if stream is not None:
            given["stream"] = stream
        if quiet is not None:
            given["quiet"] = quiet
        resolved = _adopt_positional("Console", ("stream", "quiet"), args, given)
        self.quiet = bool(resolved.get("quiet", False))
        self._stream = resolved.get("stream")

    @property
    def stream(self) -> IO[str]:
        """The output stream (defaults to the *current* ``sys.stdout``)."""
        return self._stream if self._stream is not None else sys.stdout

    def say(self, text: str = "") -> None:
        """Write one line (suppressed entirely when quiet)."""
        if self.quiet:
            return
        self.stream.write(text + "\n")


#: The process-wide console used by experiments and the CLI.
_CONSOLE = Console()


def console() -> Console:
    """The process-wide console."""
    return _CONSOLE


def set_quiet(quiet: bool) -> None:
    """Globally silence (or re-enable) the process-wide console."""
    _CONSOLE.quiet = bool(quiet)


def is_quiet() -> bool:
    """Whether the process-wide console is silenced."""
    return _CONSOLE.quiet


def say(text: str = "") -> None:
    """Write one line through the process-wide console."""
    _CONSOLE.say(text)


# -- the narrator ------------------------------------------------------------


class NarratorTracer:
    """Render the event stream as human-readable lines, live.

    Attach it (alone or composed with a :class:`JsonlTraceWriter`) to
    watch ARQ's move/rollback/cooldown decisions, PARTIES' FSM cycling or
    per-epoch entropy as the run unfolds — the CLI's ``--verbose`` flag
    does exactly this.

    The narrator renders each event as it arrives and keeps **nothing**
    in memory — it narrates million-event runs at O(1) space (unlike
    :class:`~repro.obs.events.CollectingTracer`). Arguments are
    keyword-only (``sink=...``, ``every_epoch=...``); positional calls
    still work behind a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        *args: Any,
        sink: Optional[Console] = None,
        every_epoch: Optional[bool] = None,
    ) -> None:
        given: Dict[str, Any] = {}
        if sink is not None:
            given["sink"] = sink
        if every_epoch is not None:
            given["every_epoch"] = every_epoch
        resolved = _adopt_positional(
            "NarratorTracer", ("sink", "every_epoch"), args, given
        )
        self._sink = resolved.get("sink") or _CONSOLE
        self._every_epoch = bool(resolved.get("every_epoch", False))

    def emit(self, event: TraceEvent) -> None:
        """Render one event (quiet epochs are elided unless asked for)."""
        line = self.render(event)
        if line is not None:
            self._sink.say(line)

    def render(self, event: TraceEvent) -> Optional[str]:
        """The narrated line for ``event`` (``None`` = stay silent)."""
        t = f"[{event.time_s:8.1f}s]"
        if isinstance(event, RunStarted):
            apps = ", ".join(event.lc_apps + event.be_apps)
            return (
                f"{t} run started: {event.scheduler} on {apps} "
                f"for {event.duration_s:g}s (epoch {event.epoch_s:g}s, "
                f"seed {event.seed})"
            )
        if isinstance(event, RunFinished):
            return (
                f"{t} run finished: {event.epochs} epochs, "
                f"E_S={event.mean_e_s:.3f} E_LC={event.mean_e_lc:.3f} "
                f"E_BE={event.mean_e_be:.3f}, {event.violations} violations"
            )
        if isinstance(event, EpochMeasured):
            if not self._every_epoch and event.violations == 0:
                return None
            return (
                f"{t} epoch {event.epoch}: E_S={event.e_s:.3f} "
                f"E_LC={event.e_lc:.3f} E_BE={event.e_be:.3f} "
                f"violations={event.violations}"
            )
        if isinstance(event, QoSViolation):
            return (
                f"{t} QoS violation: {event.application} at "
                f"{event.tail_ms:.2f}ms (threshold {event.threshold_ms:.2f}ms)"
            )
        if isinstance(event, ResourceMove):
            reason = f" ({event.reason})" if event.reason else ""
            return (
                f"{t} {event.scheduler}: move {event.amount:g} "
                f"{event.resource} {event.source} -> {event.destination}{reason}"
            )
        if isinstance(event, Rollback):
            return (
                f"{t} {event.scheduler}: rollback {event.amount:g} "
                f"{event.resource} {event.source} -> {event.destination}"
            )
        if isinstance(event, CooldownStart):
            return (
                f"{t} {event.scheduler}: cooldown on {event.region} "
                f"until {event.until_s:g}s"
            )
        if isinstance(event, CooldownEnd):
            return f"{t} {event.scheduler}: cooldown on {event.region} ended"
        if isinstance(event, FSMTransition):
            return (
                f"{t} fsm[{event.owner}]: {event.from_resource} -> "
                f"{event.to_resource}"
            )
        if isinstance(event, SearchProgress):
            return (
                f"{t} {event.scheduler}: search {event.phase} "
                f"({event.evaluations} evaluations, best {event.best_score:.3f})"
            )
        if isinstance(event, SchedulerDecision):
            if not event.plan_changed:
                return None
            return f"{t} {event.scheduler}: new plan — {event.plan}"
        if isinstance(event, FaultInjected):
            scope = ", ".join(event.targets) if event.targets else "all"
            detail = f" ({event.detail})" if event.detail else ""
            return (
                f"{t} fault injected: {event.fault} on {scope} "
                f"until {event.until_s:g}s{detail}"
            )
        if isinstance(event, FaultCleared):
            scope = ", ".join(event.targets) if event.targets else "all"
            return f"{t} fault cleared: {event.fault} on {scope}"
        if isinstance(event, TelemetryGap):
            return (
                f"{t} {event.scheduler}: telemetry unusable "
                f"(held {event.held}, dropped {event.dropped}) — holding plan"
            )
        if isinstance(event, TelemetryRepaired):
            return (
                f"{t} {event.scheduler}: telemetry repaired "
                f"({event.fresh} fresh, {event.held} held, "
                f"{event.dropped} dropped)"
            )
        if isinstance(event, DecisionSkipped):
            detail = f": {event.detail}" if event.detail else ""
            return f"{t} {event.scheduler}: decision skipped ({event.reason}){detail}"
        if isinstance(event, InvariantViolation):
            return (
                f"{t} INVARIANT {event.invariant} [{event.scheduler}] "
                f"epoch {event.epoch}: {event.detail}"
            )
        return None


# -- per-epoch run exporters (moved from repro.cluster.export) ---------------

#: Column order of the per-epoch CSV.
EPOCH_COLUMNS = [
    "epoch",
    "time_s",
    "application",
    "kind",
    "load_fraction",
    "tail_ms",
    "ideal_ms",
    "threshold_ms",
    "ipc",
    "ipc_solo",
    "satisfied",
    "effective_cores",
    "effective_ways",
    "bandwidth_multiplier",
    "e_lc",
    "e_be",
    "e_s",
    "plan_shared_cores",
    "plan_shared_ways",
]


def epochs_to_rows(result: RunResult) -> List[Dict[str, object]]:
    """One flat dict per (epoch × application) sample."""
    rows: List[Dict[str, object]] = []
    for record in result.records:
        base = {
            "epoch": record.index,
            "time_s": record.time_s,
            "e_lc": record.e_lc,
            "e_be": record.e_be,
            "e_s": record.e_s,
            "plan_shared_cores": record.plan.shared.cores,
            "plan_shared_ways": record.plan.shared.llc_ways,
        }
        for name, measurement in record.lc.items():
            resources = record.resources[name]
            rows.append(
                {
                    **base,
                    "application": name,
                    "kind": "lc",
                    "load_fraction": measurement.load_fraction,
                    "tail_ms": measurement.tail_ms,
                    "ideal_ms": measurement.ideal_ms,
                    "threshold_ms": measurement.threshold_ms,
                    "ipc": None,
                    "ipc_solo": None,
                    "satisfied": measurement.satisfied,
                    "effective_cores": resources.cores,
                    "effective_ways": resources.ways,
                    "bandwidth_multiplier": resources.bandwidth_multiplier,
                }
            )
        for name, measurement in record.be.items():
            resources = record.resources[name]
            rows.append(
                {
                    **base,
                    "application": name,
                    "kind": "be",
                    "load_fraction": None,
                    "tail_ms": None,
                    "ideal_ms": None,
                    "threshold_ms": None,
                    "ipc": measurement.ipc,
                    "ipc_solo": measurement.ipc_solo,
                    "satisfied": None,
                    "effective_cores": resources.cores,
                    "effective_ways": resources.ways,
                    "bandwidth_multiplier": resources.bandwidth_multiplier,
                }
            )
    return rows


def write_csv(result: RunResult, path: PathLike) -> pathlib.Path:
    """Write the per-epoch samples as CSV; returns the path written."""
    path = pathlib.Path(path)
    rows = epochs_to_rows(result)
    if not rows:
        raise ConfigurationError("cannot export an empty run")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=EPOCH_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key) for key in EPOCH_COLUMNS})
    return path


def summary_dict(result: RunResult) -> Dict[str, object]:
    """The run's headline summary as a JSON-ready dict."""
    return {
        "scheduler": result.scheduler_name,
        "seed": result.collocation.seed,
        "epoch_s": result.collocation.epoch_s,
        "warmup_s": result.warmup_s,
        "epochs": len(result.records),
        "mean_e_lc": result.mean_e_lc(),
        "mean_e_be": result.mean_e_be(),
        "mean_e_s": result.mean_e_s(),
        "yield": result.yield_fraction(),
        "violations": result.violation_count(),
        "mean_tail_ms": result.mean_tail_latencies_ms(),
        "mean_ipc": result.mean_ipcs(),
    }


def write_json(result: RunResult, path: PathLike) -> pathlib.Path:
    """Write summary + per-epoch samples as JSON; returns the path."""
    path = pathlib.Path(path)
    payload = {
        "summary": summary_dict(result),
        "epochs": epochs_to_rows(result),
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


# -- window exporters --------------------------------------------------------

#: Column order of the per-window CSV.
WINDOW_COLUMNS = [
    "window",
    "start_s",
    "end_s",
    "signal",
    "application",
    "count",
    "min",
    "max",
    "mean",
    "p50",
    "p95",
    "p99",
]


def window_rows(summary: WindowSummary) -> List[Dict[str, object]]:
    """One flat dict per (window × signal × application) aggregate.

    Signals: ``events`` (total folded), ``violations`` and
    ``plan_changes`` (counts), the entropy series (``e_s``/``e_lc``/
    ``e_be``), and the per-app distributions ``tail_ms``/``load``/
    ``ipc``/``slowdown`` with their count/min/max/mean/p50/p95/p99.
    """
    rows: List[Dict[str, object]] = []
    for window in summary.ordered():
        base = {
            "window": window.index,
            "start_s": window.start_s,
            "end_s": window.end_s,
        }
        rows.append(
            {**base, "signal": "events", "application": "",
             "count": window.event_total()}
        )
        if window.plan_changes:
            rows.append(
                {**base, "signal": "plan_changes", "application": "",
                 "count": window.plan_changes}
            )
        for app, count in sorted(window.violations.items()):
            rows.append(
                {**base, "signal": "violations", "application": app,
                 "count": count}
            )
        for name, stats in sorted(window.entropy.items()):
            rows.append(
                {**base, "signal": name, "application": "", **stats.summary()}
            )
        for signal, mapping in (
            ("tail_ms", window.tails),
            ("load", window.loads),
            ("ipc", window.ipcs),
            ("slowdown", window.slowdowns),
        ):
            for app, stats in sorted(mapping.items()):
                rows.append(
                    {**base, "signal": signal, "application": app,
                     **stats.summary()}
                )
    return rows


def write_windows_csv(
    summary: WindowSummary, *, path: PathLike, append: bool = False
) -> pathlib.Path:
    """Write the window aggregates as CSV; returns the path.

    Keyword-only ``path``/``append`` tail like every exporter here;
    ``append=True`` skips the header when the file already has content.
    """
    path = pathlib.Path(path)
    mode = "a" if append else "w"
    fresh = not (append and path.exists() and path.stat().st_size > 0)
    with path.open(mode, newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=WINDOW_COLUMNS)
        if fresh:
            writer.writeheader()
        for row in window_rows(summary):
            writer.writerow({key: row.get(key) for key in WINDOW_COLUMNS})
    return path


def write_windows_jsonl(
    summary: WindowSummary, *, path: PathLike, append: bool = False
) -> pathlib.Path:
    """Write one canonical JSON line per window; returns the path.

    Lines are sorted-key compact JSON of each window's full mergeable
    state, so window dumps are byte-identical across ``--jobs`` settings
    and diff cleanly — the same property the event traces have.
    """
    path = pathlib.Path(path)
    with path.open("a" if append else "w") as handle:
        for window in summary.ordered():
            handle.write(
                json.dumps(
                    window.to_dict(),
                    sort_keys=True,
                    separators=(",", ":"),
                    allow_nan=False,
                )
                + "\n"
            )
    return path


def windows_to_prometheus(summary: WindowSummary) -> str:
    """Render the window aggregates in Prometheus text exposition format.

    Each window is a labelled sample set (``window="<index>"``): event
    totals, per-app violation counts, and per-app tail-latency quantiles.
    """
    lines: List[str] = [
        "# HELP repro_window_events trace events folded into the window",
        "# TYPE repro_window_events gauge",
    ]
    ordered = summary.ordered()
    for window in ordered:
        lines.append(f'repro_window_events{{window="{window.index}"}} '
                     f"{window.event_total()}")
    lines.append("# HELP repro_window_violations QoS violations in the window")
    lines.append("# TYPE repro_window_violations gauge")
    for window in ordered:
        for app, count in sorted(window.violations.items()):
            lines.append(
                f'repro_window_violations{{app="{app}",window="{window.index}"}} '
                f"{count}"
            )
    lines.append("# HELP repro_window_tail_ms per-app tail latency quantiles")
    lines.append("# TYPE repro_window_tail_ms summary")
    for window in ordered:
        for app, stats in sorted(window.tails.items()):
            if not stats.n:
                continue
            for q in (0.5, 0.95, 0.99):
                value = stats.percentile(q * 100.0)
                lines.append(
                    f'repro_window_tail_ms{{app="{app}",quantile="{q:g}",'
                    f'window="{window.index}"}} {value:.17g}'
                )
    return "\n".join(lines) + "\n"


def write_windows_prometheus(
    summary: WindowSummary, *, path: PathLike, append: bool = False
) -> pathlib.Path:
    """Write the window aggregates as Prometheus text; returns the path."""
    path = pathlib.Path(path)
    text = windows_to_prometheus(summary)
    if append:
        with path.open("a") as handle:
            handle.write(text)
    else:
        path.write_text(text)
    return path


def write_windows(
    summary: WindowSummary, *, path: PathLike, append: bool = False
) -> pathlib.Path:
    """Write windows, picking the format from the extension.

    ``.csv`` selects CSV, ``.jsonl`` the per-window JSON-lines dump;
    anything else (``.prom``, ``.txt``, …) the Prometheus text format.
    """
    path = pathlib.Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return write_windows_csv(summary, path=path, append=append)
    if suffix == ".jsonl":
        return write_windows_jsonl(summary, path=path, append=append)
    return write_windows_prometheus(summary, path=path, append=append)
