"""Application-to-node placement strategies.

A placement maps a mixed bag of LC and BE applications onto a set of
nodes. Three strategies, in increasing awareness:

* :class:`RoundRobinPlacement` — deal applications out in order;
* :class:`BinPackingPlacement` — greedy worst-fit on a pressure score
  combining reserved cores and memory-bandwidth appetite (the classic
  resource-vector heuristic);
* :class:`EntropyAwarePlacement` — place each application on the node
  whose *probed* ``E_S`` after the addition is lowest, measured by a
  short simulation under the target scheduling strategy. This is the
  paper's metric applied one level up: the same single figure of merit
  that ranks strategies also ranks placements.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple, Union

from repro.cluster.collocation import BEMember, Collocation, LCMember
from repro.cluster.run import run_collocation
from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.server.spec import NodeSpec

Member = Union[LCMember, BEMember]


def _is_lc(member: Member) -> bool:
    return isinstance(member, LCMember)


def _member_pressure(member: Member, spec: NodeSpec) -> float:
    """Scalar packing pressure of one application on one node.

    The max of its normalised core reservation and bandwidth appetite —
    whichever dimension it stresses more.
    """
    profile = member.profile
    if _is_lc(member):
        cores = member.profile.reserve_cores(member.load(0.0))
    else:
        cores = float(profile.threads)
    core_share = cores / spec.cores
    bw_share = profile.membw_ref_gbps / spec.membw_gbps
    return max(core_share, bw_share)


@dataclass(frozen=True)
class Assignment:
    """The outcome of a placement: per-node member lists."""

    per_node: Tuple[Tuple[Member, ...], ...]

    def collocations(
        self, specs: Sequence[NodeSpec], seed: int = 2023
    ) -> List[Collocation]:
        """Materialise per-node collocations (empty nodes are skipped)."""
        collocations = []
        for index, members in enumerate(self.per_node):
            if not members:
                continue
            collocations.append(
                Collocation(
                    lc=tuple(m for m in members if _is_lc(m)),
                    be=tuple(m for m in members if not _is_lc(m)),
                    spec=specs[index],
                    seed=seed + index,
                )
            )
        return collocations

    def node_of(self, name: str) -> int:
        """Index of the node hosting application ``name``."""
        for index, members in enumerate(self.per_node):
            if any(m.name == name for m in members):
                return index
        raise ConfigurationError(f"application {name!r} was not placed")


class Placement(abc.ABC):
    """A strategy assigning applications to nodes."""

    name: str = "placement"

    @abc.abstractmethod
    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        """Assign every member to exactly one node."""

    @staticmethod
    def _validate(members: Sequence[Member], specs: Sequence[NodeSpec]) -> None:
        if not specs:
            raise ConfigurationError("placement needs at least one node")
        if not members:
            raise ConfigurationError("placement needs at least one application")
        names = [m.name for m in members]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate application names: {sorted(names)}")


class RoundRobinPlacement(Placement):
    """Deal applications onto nodes in order."""

    name = "round-robin"

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        for index, member in enumerate(members):
            buckets[index % len(specs)].append(member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))


class BinPackingPlacement(Placement):
    """Greedy worst-fit on the pressure score (heaviest first)."""

    name = "bin-packing"

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        loads = [0.0 for _ in specs]
        ordered = sorted(
            members,
            key=lambda m: max(_member_pressure(m, spec) for spec in specs),
            reverse=True,
        )
        for member in ordered:
            target = min(
                range(len(specs)),
                key=lambda i: loads[i] + _member_pressure(member, specs[i]),
            )
            buckets[target].append(member)
            loads[target] += _member_pressure(member, specs[target])
        return Assignment(per_node=tuple(tuple(b) for b in buckets))


@dataclass
class EntropyAwarePlacement(Placement):
    """Greedy placement probed by short entropy measurements.

    For each application (heaviest first), simulate each candidate node's
    tentative collocation for ``probe_duration_s`` under the target
    strategy and place the application where the probed ``E_S`` is
    lowest. Probes are short — the signal needed is a ranking, not a
    converged measurement.
    """

    scheduler_factory: Callable[[], Scheduler] = None
    probe_duration_s: float = 15.0
    seed: int = 2023
    name: str = field(default="entropy-aware")

    def __post_init__(self) -> None:
        if self.scheduler_factory is None:
            raise ConfigurationError(
                "EntropyAwarePlacement needs a scheduler factory"
            )
        if self.probe_duration_s <= 0:
            raise ConfigurationError("probe duration must be positive")

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        ordered = sorted(
            members,
            key=lambda m: max(_member_pressure(m, spec) for spec in specs),
            reverse=True,
        )
        for member in ordered:
            target = min(
                range(len(specs)),
                key=lambda i: self._probe(buckets[i] + [member], specs[i]),
            )
            buckets[target].append(member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))

    def _probe(self, members: List[Member], spec: NodeSpec) -> float:
        collocation = Collocation(
            lc=tuple(m for m in members if _is_lc(m)),
            be=tuple(m for m in members if not _is_lc(m)),
            spec=spec,
            seed=self.seed,
        )
        result = run_collocation(
            collocation,
            self.scheduler_factory(),
            duration_s=self.probe_duration_s,
            warmup_s=self.probe_duration_s / 3,
        )
        return result.mean_e_s()
