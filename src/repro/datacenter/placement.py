"""Application-to-node placement strategies.

A placement maps a mixed bag of LC and BE applications onto a set of
nodes. Three strategies, in increasing awareness:

* :class:`RoundRobinPlacement` — deal applications out in order;
* :class:`BinPackingPlacement` — greedy worst-fit on a pressure score
  combining reserved cores and memory-bandwidth appetite (the classic
  resource-vector heuristic);
* :class:`EntropyAwarePlacement` — place each application on the node
  whose *probed* ``E_S`` after the addition is lowest, measured by a
  short simulation under the target scheduling strategy. This is the
  paper's metric applied one level up: the same single figure of merit
  that ranks strategies also ranks placements.

Pressure scoring is **horizon-aware**: an LC application's core
reservation is evaluated at its *peak* load over ``horizon_s`` seconds of
its load trace, not at ``t=0`` — a diurnal or ramping workload that idles
at the start of the run would otherwise be scored as nearly free and
packed onto an already-busy node.

All placements are deterministic: the heaviest-first ordering is a stable
sort (equal-pressure members keep their input order) and node selection
breaks pressure ties by the lowest node index.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple, Union

from repro.cluster.collocation import BEMember, Collocation, LCMember
from repro.cluster.run import run_collocation
from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.server.spec import NodeSpec
from repro.workloads.loadgen import LoadTrace

Member = Union[LCMember, BEMember]

#: Default look-ahead for pressure scoring: long enough to cover a full
#: :class:`~repro.workloads.loadgen.FluctuatingLoad` staircase or a
#: short diurnal period. Constant loads are horizon-independent.
DEFAULT_PRESSURE_HORIZON_S = 600.0

#: Load-trace samples taken across the pressure horizon (plus ``t=0``).
#: Piecewise/diurnal traces move on second-to-minute scales, so a fixed
#: grid this dense recovers their peak exactly in practice.
PRESSURE_SAMPLES = 64


def _is_lc(member: Member) -> bool:
    return isinstance(member, LCMember)


def peak_load(trace: LoadTrace, horizon_s: float, samples: int = PRESSURE_SAMPLES) -> float:
    """Peak load fraction of ``trace`` over ``[0, horizon_s]``.

    Sampled on a fixed grid (``samples`` points plus ``t=0``), so the
    result is a deterministic pure function of the trace. A non-positive
    horizon degenerates to the instantaneous ``trace(0)``.
    """
    if horizon_s <= 0:
        return trace(0.0)
    step = horizon_s / samples
    return max(trace(i * step) for i in range(samples + 1))


def _member_pressure(
    member: Member, spec: NodeSpec, horizon_s: float = DEFAULT_PRESSURE_HORIZON_S
) -> float:
    """Scalar packing pressure of one application on one node.

    The max of its normalised core reservation and bandwidth appetite —
    whichever dimension it stresses more. LC core reservation is scored
    at the member's **peak** load over ``horizon_s`` (see
    :func:`peak_load`): scoring at ``t=0`` underestimates diurnal and
    ramping workloads, which was exactly how
    :class:`BinPackingPlacement` used to overpack nodes that only get
    busy later in the run.
    """
    profile = member.profile
    if _is_lc(member):
        cores = profile.reserve_cores(peak_load(member.load, horizon_s))
    else:
        cores = float(profile.threads)
    core_share = cores / spec.cores
    bw_share = profile.membw_ref_gbps / spec.membw_gbps
    return max(core_share, bw_share)


def node_pressure(
    members: Sequence[Member],
    spec: NodeSpec,
    horizon_s: float = DEFAULT_PRESSURE_HORIZON_S,
) -> float:
    """Total packing pressure of a member list on one node."""
    return sum(_member_pressure(member, spec, horizon_s) for member in members)


@dataclass(frozen=True)
class Assignment:
    """The outcome of a placement: per-node member lists."""

    per_node: Tuple[Tuple[Member, ...], ...]

    def indexed_collocations(
        self, specs: Sequence[NodeSpec], seed: int = 2023
    ) -> List[Tuple[int, Collocation]]:
        """Materialise ``(node_index, collocation)`` pairs for busy nodes.

        Empty nodes contribute nothing, but every returned collocation
        stays paired with the node index it runs on — consumers must use
        these indices (not list positions) to line results up with
        :attr:`per_node` and :meth:`node_of`. Each node's seed is
        ``seed + node_index``, so per-node random streams stay distinct
        and stable however many nodes are empty.
        """
        pairs: List[Tuple[int, Collocation]] = []
        for index, members in enumerate(self.per_node):
            if not members:
                continue
            pairs.append(
                (
                    index,
                    Collocation(
                        lc=tuple(m for m in members if _is_lc(m)),
                        be=tuple(m for m in members if not _is_lc(m)),
                        spec=specs[index],
                        seed=seed + index,
                    ),
                )
            )
        return pairs

    def collocations(
        self, specs: Sequence[NodeSpec], seed: int = 2023
    ) -> List[Collocation]:
        """Materialise per-node collocations (empty nodes are skipped).

        .. warning:: The returned list positions do **not** line up with
           node indices once any node is empty — use
           :meth:`indexed_collocations` when results must be traced back
           to nodes.
        """
        return [
            collocation
            for _, collocation in self.indexed_collocations(specs, seed=seed)
        ]

    def node_of(self, name: str) -> int:
        """Index of the node hosting application ``name``."""
        for index, members in enumerate(self.per_node):
            if any(m.name == name for m in members):
                return index
        raise ConfigurationError(f"application {name!r} was not placed")

    def members(self) -> List[Member]:
        """All placed members, in node order then per-node order."""
        return [member for bucket in self.per_node for member in bucket]

    def busy_nodes(self) -> Tuple[int, ...]:
        """Indices of nodes hosting at least one application."""
        return tuple(
            index for index, bucket in enumerate(self.per_node) if bucket
        )

    def moved(self, name: str, target: int) -> "Assignment":
        """A new assignment with application ``name`` moved to ``target``.

        Raises :class:`~repro.errors.ConfigurationError` when the
        application is unplaced or the target index is out of range; the
        move is order-preserving (the member is appended to the target
        bucket, everything else keeps its position).
        """
        if not 0 <= target < len(self.per_node):
            raise ConfigurationError(
                f"target node {target} out of range 0..{len(self.per_node) - 1}"
            )
        source = self.node_of(name)
        if source == target:
            return self
        moved_member = next(
            m for m in self.per_node[source] if m.name == name
        )
        buckets = [list(bucket) for bucket in self.per_node]
        buckets[source] = [m for m in buckets[source] if m.name != name]
        buckets[target].append(moved_member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))

    def cleared(self, nodes: Sequence[int]) -> "Assignment":
        """A new assignment with the given nodes' buckets emptied.

        The degraded-mode epoch loop uses this to keep quarantined
        nodes' parked tenants out of an epoch run without forgetting
        where they live: the cleared copy is what *runs*, the original
        keeps the book-keeping. Out-of-range indices are ignored (a
        fault plan may name nodes a smaller cluster doesn't have).
        """
        exclude = {node for node in nodes if 0 <= node < len(self.per_node)}
        if not exclude:
            return self
        return Assignment(
            per_node=tuple(
                () if index in exclude else bucket
                for index, bucket in enumerate(self.per_node)
            )
        )

    def with_admitted(self, member: Member, node: int) -> "Assignment":
        """A new assignment with ``member`` added to node ``node``."""
        if not 0 <= node < len(self.per_node):
            raise ConfigurationError(
                f"admission node {node} out of range 0..{len(self.per_node) - 1}"
            )
        if any(m.name == member.name for bucket in self.per_node for m in bucket):
            raise ConfigurationError(
                f"application {member.name!r} is already placed"
            )
        buckets = [list(bucket) for bucket in self.per_node]
        buckets[node].append(member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))


class Placement(abc.ABC):
    """A strategy assigning applications to nodes."""

    name: str = "placement"

    @abc.abstractmethod
    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        """Assign every member to exactly one node."""

    @staticmethod
    def _validate(members: Sequence[Member], specs: Sequence[NodeSpec]) -> None:
        if not specs:
            raise ConfigurationError("placement needs at least one node")
        if not members:
            raise ConfigurationError("placement needs at least one application")
        names = [m.name for m in members]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate application names: {sorted(names)}")


class RoundRobinPlacement(Placement):
    """Deal applications onto nodes in order."""

    name = "round-robin"

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        """Deal members across nodes in input order."""
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        for index, member in enumerate(members):
            buckets[index % len(specs)].append(member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))


@dataclass(frozen=True)
class BinPackingPlacement(Placement):
    """Greedy worst-fit on the pressure score (heaviest first).

    ``horizon_s`` is the load-trace look-ahead for pressure scoring (see
    :func:`peak_load`); constant-load members score identically at any
    horizon. Ordering is fully deterministic: the heaviest-first sort is
    stable and node selection breaks ties by the lowest node index.
    """

    horizon_s: float = DEFAULT_PRESSURE_HORIZON_S
    name: str = field(default="bin-packing")

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        """Greedily pack members onto the least-pressured node."""
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        loads = [0.0 for _ in specs]
        ordered = sorted(
            members,
            key=lambda m: max(
                _member_pressure(m, spec, self.horizon_s) for spec in specs
            ),
            reverse=True,
        )
        for member in ordered:
            target = min(
                range(len(specs)),
                key=lambda i: loads[i]
                + _member_pressure(member, specs[i], self.horizon_s),
            )
            buckets[target].append(member)
            loads[target] += _member_pressure(member, specs[target], self.horizon_s)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))


@dataclass
class EntropyAwarePlacement(Placement):
    """Greedy placement probed by short entropy measurements.

    For each application (heaviest first), simulate each candidate node's
    tentative collocation for ``probe_duration_s`` under the target
    strategy and place the application where the probed ``E_S`` is
    lowest. Probes are short — the signal needed is a ranking, not a
    converged measurement.
    """

    scheduler_factory: Callable[[], Scheduler] = None
    probe_duration_s: float = 15.0
    seed: int = 2023
    horizon_s: float = DEFAULT_PRESSURE_HORIZON_S
    name: str = field(default="entropy-aware")

    def __post_init__(self) -> None:
        if self.scheduler_factory is None:
            raise ConfigurationError(
                "EntropyAwarePlacement needs a scheduler factory"
            )
        if self.probe_duration_s <= 0:
            raise ConfigurationError("probe duration must be positive")

    def assign(
        self, members: Sequence[Member], specs: Sequence[NodeSpec]
    ) -> Assignment:
        """Place each member where its probed ``E_S`` lands lowest."""
        self._validate(members, specs)
        buckets: List[List[Member]] = [[] for _ in specs]
        ordered = sorted(
            members,
            key=lambda m: max(
                _member_pressure(m, spec, self.horizon_s) for spec in specs
            ),
            reverse=True,
        )
        for member in ordered:
            target = min(
                range(len(specs)),
                key=lambda i: self._probe(buckets[i] + [member], specs[i]),
            )
            buckets[target].append(member)
        return Assignment(per_node=tuple(tuple(b) for b in buckets))

    def _probe(self, members: List[Member], spec: NodeSpec) -> float:
        collocation = Collocation(
            lc=tuple(m for m in members if _is_lc(m)),
            be=tuple(m for m in members if not _is_lc(m)),
            spec=spec,
            seed=self.seed,
        )
        result = run_collocation(
            collocation,
            self.scheduler_factory(),
            duration_s=self.probe_duration_s,
            warmup_s=self.probe_duration_s / 3,
        )
        return result.mean_e_s()
