"""The datacenter: many nodes, one entropy figure.

:class:`Datacenter` runs each node's collocation under (a fresh instance
of) a scheduling strategy and aggregates every node's post-warm-up
observations into datacenter-level entropies — ``E_S`` was designed to be
"robust to various collocation scenarios" (§II), and pooling observations
across nodes is exactly the holistic use the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.cluster.run import RunResult, run_collocation
from repro.datacenter.placement import Assignment, Member, Placement
from repro.entropy.records import (
    BEObservation,
    EntropyBreakdown,
    LCObservation,
    SystemObservation,
)
from repro.errors import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.server.spec import NodeSpec


@dataclass(frozen=True)
class DatacenterResult:
    """Per-node runs plus the pooled datacenter summary."""

    placement_name: str
    scheduler_name: str
    node_results: Sequence[RunResult]
    assignment: Assignment

    def pooled_observation(self) -> SystemObservation:
        """All nodes' mean post-warm-up observations, pooled."""
        lc: List[LCObservation] = []
        be: List[BEObservation] = []
        for result in self.node_results:
            records = result.measured_records()
            for name in result.collocation.lc_profiles:
                samples = [r.lc[name] for r in records]
                lc.append(
                    LCObservation(
                        name=name,
                        ideal_ms=sum(s.ideal_ms for s in samples) / len(samples),
                        measured_ms=sum(s.tail_ms for s in samples) / len(samples),
                        threshold_ms=samples[0].threshold_ms,
                    )
                )
            for name, profile in result.collocation.be_profiles.items():
                samples = [r.be[name].ipc for r in records]
                be.append(
                    BEObservation(
                        name=name,
                        ipc_solo=profile.ipc_solo,
                        ipc_real=sum(samples) / len(samples),
                    )
                )
        return SystemObservation(lc=tuple(lc), be=tuple(be))

    def breakdown(self, relative_importance: float = 0.8) -> EntropyBreakdown:
        """Datacenter-level Table II-style summary."""
        return self.pooled_observation().breakdown(relative_importance)

    def yield_fraction(self) -> float:
        return self.pooled_observation().yield_fraction()

    def per_node_entropy(self) -> List[float]:
        return [result.mean_e_s() for result in self.node_results]


@dataclass(frozen=True)
class Datacenter:
    """A set of nodes to place applications on and run strategies over."""

    specs: Sequence[NodeSpec]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("a datacenter needs at least one node")

    def run(
        self,
        members: Sequence[Member],
        placement: Placement,
        scheduler_factory: Callable[[], Scheduler],
        duration_s: float = 120.0,
        warmup_s: float = 60.0,
        seed: int = 2023,
    ) -> DatacenterResult:
        """Place ``members``, run every node, aggregate.

        Each node gets a *fresh* scheduler instance (schedulers carry
        internal state) and a distinct RNG seed.
        """
        assignment = placement.assign(members, self.specs)
        collocations = assignment.collocations(self.specs, seed=seed)
        results = [
            run_collocation(
                collocation, scheduler_factory(), duration_s, warmup_s
            )
            for collocation in collocations
        ]
        scheduler_name = results[0].scheduler_name if results else "n/a"
        return DatacenterResult(
            placement_name=placement.name,
            scheduler_name=scheduler_name,
            node_results=tuple(results),
            assignment=assignment,
        )

    def compare_placements(
        self,
        members: Sequence[Member],
        placements: Sequence[Placement],
        scheduler_factory: Callable[[], Scheduler],
        duration_s: float = 120.0,
        warmup_s: float = 60.0,
        seed: int = 2023,
    ) -> Dict[str, DatacenterResult]:
        """Run several placements on the same application set."""
        return {
            placement.name: self.run(
                members, placement, scheduler_factory, duration_s, warmup_s, seed
            )
            for placement in placements
        }
