"""The datacenter: many nodes, one entropy figure.

:class:`Datacenter` runs each node's collocation under (a fresh instance
of) a scheduling strategy and aggregates every node's post-warm-up
observations into datacenter-level entropies — ``E_S`` was designed to be
"robust to various collocation scenarios" (§II), and pooling observations
across nodes is exactly the holistic use the paper motivates.

Two execution shapes:

* :meth:`Datacenter.run` — one shot: place, run every busy node (sharded
  across the warm worker pool when ``jobs > 1``; byte-identical to the
  serial path at any worker count), pool the observations.
* :meth:`Datacenter.run_epochs` — the cluster simulation: a **global
  epoch loop** in which every node runs one segment of the cluster-wide
  load trace per epoch, workers exchange only compact
  :class:`~repro.datacenter.shard.NodeEpochSummary` records, and between
  epochs an optional :class:`~repro.datacenter.migration.MigrationPolicy`
  uses each node's measured ``E_S`` as an interference score to admit
  arrivals and migrate BE hogs — a bounded, hysteretic rebalancing à la
  ARQ's own move budget, one level up.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.check.invariants import CheckConfig
from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult
from repro.datacenter.chaos import ClusterFaultPlan
from repro.datacenter.migration import MigrationPolicy, Move
from repro.datacenter.placement import Assignment, Member, Placement, _is_lc
from repro.datacenter.recovery import (
    DatacenterCheckpoint,
    Quarantine,
    failover_moves,
    summary_is_sane,
)
from repro.datacenter.shard import (
    NodeEpochSummary,
    NodeOutcome,
    NodeRun,
    ShardReport,
    run_shards,
    summarize_node,
)
from repro.entropy.records import (
    BEObservation,
    EntropyBreakdown,
    LCObservation,
    SystemObservation,
)
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.obs.events import (
    CheckpointWritten,
    NodeQuarantined,
    NodeRecovered,
    Tracer,
)
from repro.obs.windows import (
    WindowConfig,
    WindowSummary,
    merge_window_summaries,
)
from repro.schedulers.base import Scheduler
from repro.server.spec import NodeSpec
from repro.workloads.loadgen import TimeShiftedLoad

#: Seed stride between global epochs: each epoch's node ``i`` run seeds
#: ``seed + i + epoch · stride``, so per-node distinctness (``seed + i``)
#: is preserved inside an epoch while epochs stay decorrelated. Larger
#: than any realistic node count so strides never collide with indices.
EPOCH_SEED_STRIDE = 1_000_003

#: How :meth:`DatacenterResult.pooled_observation` treats nodes whose
#: measurement window is empty.
ON_EMPTY_MODES = ("raise", "skip")


def _pool_observations(
    summaries: Sequence[NodeEpochSummary],
    on_empty: str,
    context: str,
) -> SystemObservation:
    """Concatenate per-node observations, handling empty nodes by policy."""
    if on_empty not in ON_EMPTY_MODES:
        raise ConfigurationError(
            f"on_empty must be one of {ON_EMPTY_MODES}, got {on_empty!r}"
        )
    empty = [s.node_index for s in summaries if not s.measured_epochs]
    if empty and on_empty == "raise":
        raise ConfigurationError(
            f"{context}: node(s) {empty} measured no post-warm-up epochs "
            f"(duration_s too short for the warm-up window?); rerun with a "
            f"longer duration or pool with on_empty='skip'"
        )
    populated = [s for s in summaries if s.measured_epochs]
    if not populated:
        raise ConfigurationError(
            f"{context}: no node measured any post-warm-up epochs"
        )
    if empty:
        warnings.warn(
            f"{context}: skipping node(s) {empty} with no measured epochs",
            stacklevel=3,
        )
    lc: List[LCObservation] = []
    be: List[BEObservation] = []
    for summary in populated:
        lc.extend(summary.lc)
        be.extend(summary.be)
    return SystemObservation(lc=tuple(lc), be=tuple(be))


@dataclass(frozen=True)
class DatacenterResult:
    """Per-node runs plus the pooled datacenter summary.

    ``node_indices[i]`` is the node that produced ``node_summaries[i]``
    (and ``node_results[i]``, when records were kept) — list position is
    **not** a node index, because empty nodes run nothing. Use
    :meth:`result_for`/:meth:`summary_for` or :meth:`node_result_of` to
    line results up with :attr:`assignment`.
    """

    placement_name: str
    scheduler_name: str
    node_results: Tuple[RunResult, ...]
    assignment: Assignment
    node_indices: Tuple[int, ...] = ()
    node_summaries: Tuple[NodeEpochSummary, ...] = ()
    #: Merged bounded window report (when the run was window-armed);
    #: excluded from equality so windowed and plain runs compare.
    window_report: Optional[WindowSummary] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Back-fill the index/summary channel for results built the old
        # way (positional node_results only): positions then *are* node
        # indices, which is only correct when no node was skipped — the
        # historical behaviour this type now makes explicit.
        if not self.node_indices and self.node_results:
            object.__setattr__(
                self, "node_indices", tuple(range(len(self.node_results)))
            )
        if not self.node_summaries and self.node_results:
            object.__setattr__(
                self,
                "node_summaries",
                tuple(
                    summarize_node(index, result)
                    for index, result in zip(self.node_indices, self.node_results)
                ),
            )

    # -- alignment -------------------------------------------------------

    def summary_for(self, node_index: int) -> NodeEpochSummary:
        """The summary of node ``node_index`` (not a list position)."""
        for summary in self.node_summaries:
            if summary.node_index == node_index:
                return summary
        raise ConfigurationError(
            f"node {node_index} ran no collocation (empty or out of range)"
        )

    def result_for(self, node_index: int) -> RunResult:
        """The full run of node ``node_index`` (requires kept records)."""
        for index, result in zip(self.node_indices, self.node_results):
            if index == node_index:
                return result
        raise ConfigurationError(
            f"node {node_index} has no kept run result (empty node, or the "
            f"run exchanged only summaries)"
        )

    def node_result_of(self, name: str) -> RunResult:
        """The run of the node hosting application ``name``."""
        return self.result_for(self.assignment.node_of(name))

    # -- pooled summaries ------------------------------------------------

    def pooled_observation(self, on_empty: str = "raise") -> SystemObservation:
        """All nodes' mean post-warm-up observations, pooled.

        Nodes whose measurement window is empty (e.g. the warm-up left no
        epochs) make the pool ill-defined; ``on_empty="raise"`` (default)
        fails with a clear :class:`~repro.errors.ConfigurationError`,
        ``on_empty="skip"`` pools the populated nodes and warns.
        """
        return _pool_observations(
            self.node_summaries, on_empty, f"datacenter[{self.placement_name}]"
        )

    def breakdown(
        self, relative_importance: float = 0.8, on_empty: str = "raise"
    ) -> EntropyBreakdown:
        """Datacenter-level Table II-style summary."""
        return self.pooled_observation(on_empty).breakdown(relative_importance)

    def yield_fraction(self, on_empty: str = "raise") -> float:
        """Pooled ratio of LC applications meeting their QoS threshold."""
        return self.pooled_observation(on_empty).yield_fraction()

    def per_node_entropy(self) -> List[Optional[float]]:
        """Each run node's mean ``E_S`` (``None`` where nothing measured).

        Aligned with :attr:`node_indices`, not with raw node numbers.
        """
        return [summary.mean_e_s for summary in self.node_summaries]

    def interference_scores(self) -> Dict[int, float]:
        """Node index → measured mean ``E_S`` (the migration signal)."""
        return {
            summary.node_index: summary.mean_e_s
            for summary in self.node_summaries
            if summary.mean_e_s is not None
        }

    def to_dict(self, on_empty: str = "skip") -> Dict[str, object]:
        """A deterministic JSON-ready dict of the pooled summary."""
        breakdown = self.breakdown(on_empty=on_empty)
        return {
            "placement": self.placement_name,
            "scheduler": self.scheduler_name,
            "nodes_run": len(self.node_summaries),
            "pooled": {
                "e_s": breakdown.e_s,
                "e_lc": breakdown.e_lc,
                "e_be": breakdown.e_be,
                "yield": self.yield_fraction(on_empty=on_empty),
            },
            "node_summaries": [s.to_dict() for s in self.node_summaries],
        }


@dataclass(frozen=True)
class GlobalEpoch:
    """One global epoch of the cluster simulation.

    ``assignment`` is what the epoch *ran with*; ``moves`` were applied
    after its measurements (they shape the next epoch). ``admitted``
    lists applications admitted at this epoch's start, with the node each
    landed on.

    The degraded-mode fields record the epoch's failure story:
    ``quarantined`` are the nodes out of service this epoch,
    ``failed``/``lost`` the nodes whose run failed (or missed the
    deadline) / whose summary was dropped as lost or corrupt,
    ``recovered`` the nodes that re-entered service at epoch start,
    ``failovers`` the evacuation moves applied before the run, and
    ``parked`` the applications stranded on down nodes (they did not run
    this epoch). ``scores`` may contain **held** entries for dark nodes
    (their last good ``E_S``, up to the staleness cap).
    """

    epoch: int
    start_s: float
    assignment: Assignment
    node_summaries: Tuple[NodeEpochSummary, ...]
    scores: Mapping[int, float]
    moves: Tuple[Move, ...] = ()
    admitted: Tuple[Tuple[str, int], ...] = ()
    quarantined: Tuple[int, ...] = ()
    failed: Tuple[int, ...] = ()
    recovered: Tuple[int, ...] = ()
    lost: Tuple[int, ...] = ()
    failovers: Tuple[Move, ...] = ()
    parked: Tuple[str, ...] = ()

    def mean_score(self) -> Optional[float]:
        """Unweighted mean of this epoch's node interference scores."""
        if not self.scores:
            return None
        return sum(self.scores.values()) / len(self.scores)

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready dict."""
        return {
            "epoch": self.epoch,
            "start_s": self.start_s,
            "scores": {str(node): s for node, s in sorted(self.scores.items())},
            "moves": [move.to_dict() for move in self.moves],
            "admitted": [[name, node] for name, node in self.admitted],
            "node_summaries": [s.to_dict() for s in self.node_summaries],
            "quarantined": list(self.quarantined),
            "failed": list(self.failed),
            "recovered": list(self.recovered),
            "lost": list(self.lost),
            "failovers": [move.to_dict() for move in self.failovers],
            "parked": list(self.parked),
        }


@dataclass(frozen=True)
class DatacenterTimeline:
    """The full record of a :meth:`Datacenter.run_epochs` simulation."""

    placement_name: str
    scheduler_name: str
    migration_name: str
    epoch_duration_s: float
    epochs: Tuple[GlobalEpoch, ...]
    final_assignment: Assignment

    def pooled_observation(self, on_empty: str = "skip") -> SystemObservation:
        """Every epoch's every node observation, pooled."""
        summaries = [
            summary for epoch in self.epochs for summary in epoch.node_summaries
        ]
        return _pool_observations(
            summaries, on_empty, f"timeline[{self.migration_name}]"
        )

    def breakdown(
        self, relative_importance: float = 0.8, on_empty: str = "skip"
    ) -> EntropyBreakdown:
        """Timeline-level pooled entropy breakdown."""
        return self.pooled_observation(on_empty).breakdown(relative_importance)

    def mean_node_e_s(self) -> float:
        """Measured-epoch-weighted mean of per-node-epoch ``E_S``."""
        total = 0.0
        weight = 0
        for epoch in self.epochs:
            for summary in epoch.node_summaries:
                if summary.mean_e_s is not None:
                    total += summary.mean_e_s * summary.measured_epochs
                    weight += summary.measured_epochs
        if not weight:
            raise ConfigurationError("timeline measured no epochs at all")
        return total / weight

    def total_moves(self) -> int:
        """Migrations applied across the whole timeline."""
        return sum(len(epoch.moves) for epoch in self.epochs)

    def violations(self) -> int:
        """Total (epoch × node × application) QoS violations."""
        return sum(
            summary.violations
            for epoch in self.epochs
            for summary in epoch.node_summaries
        )

    def to_dict(self) -> Dict[str, object]:
        """A deterministic JSON-ready dict of the whole timeline."""
        breakdown = self.breakdown()
        return {
            "placement": self.placement_name,
            "scheduler": self.scheduler_name,
            "migration": self.migration_name,
            "epoch_duration_s": self.epoch_duration_s,
            "pooled": {
                "e_s": breakdown.e_s,
                "e_lc": breakdown.e_lc,
                "e_be": breakdown.e_be,
                "mean_node_e_s": self.mean_node_e_s(),
                "violations": self.violations(),
                "moves": self.total_moves(),
            },
            "epochs": [epoch.to_dict() for epoch in self.epochs],
        }


def _replay_epochs(
    payloads: Sequence[Mapping[str, object]],
    assignment: Assignment,
    arrivals: Optional[Mapping[int, Sequence[Member]]],
) -> Tuple[List[GlobalEpoch], Assignment]:
    """Reconstruct checkpointed epochs and the assignment they left behind.

    Replays each recorded epoch's assignment mutations in exactly the
    order the live loop applied them — failovers, then admissions, then
    (after capturing the epoch's run assignment) migration moves — so a
    resumed run continues from the same placement the uninterrupted run
    would hold. Admitted applications are looked up by name in
    ``arrivals``; the resumed call must pass the same mapping the
    checkpointed run used.
    """
    pool: Dict[str, Member] = {
        member.name: member
        for members in (arrivals or {}).values()
        for member in members
    }
    timeline: List[GlobalEpoch] = []
    for payload in payloads:
        failovers = tuple(
            Move(**dict(entry)) for entry in payload.get("failovers", ())
        )
        for move in failovers:
            assignment = assignment.moved(move.member, move.target)
        admitted: List[Tuple[str, int]] = []
        for name, node in payload.get("admitted", ()):
            member = pool.get(name)
            if member is None:
                raise ConfigurationError(
                    f"resume: admitted application {name!r} is not in the "
                    f"arrivals mapping — resume with the same arrivals the "
                    f"checkpointed run used"
                )
            assignment = assignment.with_admitted(member, node)
            admitted.append((name, node))
        moves = tuple(Move(**dict(entry)) for entry in payload.get("moves", ()))
        timeline.append(
            GlobalEpoch(
                epoch=payload["epoch"],
                start_s=payload["start_s"],
                assignment=assignment,
                node_summaries=tuple(
                    NodeEpochSummary.from_dict(entry)
                    for entry in payload.get("node_summaries", ())
                ),
                scores={
                    int(node): score
                    for node, score in payload.get("scores", {}).items()
                },
                moves=moves,
                admitted=tuple(admitted),
                quarantined=tuple(payload.get("quarantined", ())),
                failed=tuple(payload.get("failed", ())),
                recovered=tuple(payload.get("recovered", ())),
                lost=tuple(payload.get("lost", ())),
                failovers=failovers,
                parked=tuple(payload.get("parked", ())),
            )
        )
        for move in moves:
            assignment = assignment.moved(move.member, move.target)
    return timeline, assignment


def _shifted_members(
    members: Sequence[Member], offset_s: float
) -> Tuple[Member, ...]:
    """Members with LC load traces advanced by ``offset_s`` (0 → as-is)."""
    if not offset_s:
        return tuple(members)
    return tuple(
        replace(m, load=TimeShiftedLoad(trace=m.load, offset_s=offset_s))
        if _is_lc(m)
        else m
        for m in members
    )


def _validate_measured_window(
    duration_s: float, warmup_s: float, collocations: Sequence[Collocation]
) -> None:
    """Fail fast when the warm-up window would leave no measured epochs.

    ``run_collocation`` already rejects ``warmup_s >= duration_s``; this
    additionally catches the epoch-granularity gap (the last epoch
    starting *before* the warm-up boundary), which used to surface much
    later as an opaque ``MeasurementError`` from summary pooling.
    """
    if duration_s <= warmup_s:
        raise ConfigurationError(
            f"datacenter run: duration_s ({duration_s}s) must exceed "
            f"warmup_s ({warmup_s}s) — no measured epochs would remain"
        )
    for collocation in collocations:
        epochs = int(round(duration_s / collocation.epoch_s))
        if epochs < 1 or (epochs - 1) * collocation.epoch_s < warmup_s:
            raise ConfigurationError(
                f"datacenter run: {duration_s}s in {collocation.epoch_s}s "
                f"epochs leaves no epoch at or after the {warmup_s}s "
                f"warm-up boundary"
            )


@dataclass(frozen=True)
class Datacenter:
    """A set of nodes to place applications on and run strategies over."""

    specs: Sequence[NodeSpec]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("a datacenter needs at least one node")

    def _run_assignment(
        self,
        assignment: Assignment,
        scheduler_factory: Callable[[], Scheduler],
        duration_s: float,
        warmup_s: float,
        seed: int,
        *,
        jobs: Optional[int],
        tracer: Optional[Tracer],
        faults: Optional[FaultPlan],
        checks: Optional[Union[CheckConfig, str]],
        windows: Optional[Union[WindowConfig, int, float]],
        keep_records: bool,
        timeout_s: Optional[float],
        offset_s: float = 0.0,
        retries: int = 0,
        on_error: str = "raise",
    ) -> Tuple[Tuple[int, ...], Union[List[NodeOutcome], ShardReport]]:
        """Shard one assignment over the pool; outcomes in node order.

        ``on_error="salvage"`` returns a
        :class:`~repro.datacenter.shard.ShardReport` instead of a plain
        outcome list (the degraded epoch loop's mode).
        """
        check_config = None if checks is None else CheckConfig.of(checks)
        window_config = None if windows is None else WindowConfig.of(windows)
        run_assignment = assignment
        if offset_s:
            run_assignment = Assignment(
                per_node=tuple(
                    _shifted_members(bucket, offset_s)
                    for bucket in assignment.per_node
                )
            )
        indexed = run_assignment.indexed_collocations(self.specs, seed=seed)
        _validate_measured_window(
            duration_s, warmup_s, [c for _, c in indexed]
        )
        items = [
            NodeRun(
                node_index=index,
                collocation=collocation,
                scheduler_factory=scheduler_factory,
                duration_s=duration_s,
                warmup_s=warmup_s,
                faults=faults,
                checks=check_config,
                windows=window_config,
                keep_records=keep_records,
                collect_trace=tracer is not None,
            )
            for index, collocation in indexed
        ]
        outcomes = run_shards(
            items,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            on_error=on_error,
        )
        if tracer is not None:
            # Replay per-node events in node-index order: the sharded
            # trace is byte-identical to the serial one at any --jobs.
            flat = (
                outcomes.outcomes
                if isinstance(outcomes, ShardReport)
                else outcomes
            )
            for outcome in flat:
                if outcome is None:
                    continue
                for event in outcome.events:
                    tracer.emit(event)
        return tuple(index for index, _ in indexed), outcomes

    def run(
        self,
        members: Sequence[Member],
        placement: Placement,
        scheduler_factory: Callable[[], Scheduler],
        duration_s: float = 120.0,
        warmup_s: float = 60.0,
        seed: int = 2023,
        *,
        jobs: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
        checks: Optional[Union[CheckConfig, str]] = None,
        windows: Optional[Union[WindowConfig, int, float]] = None,
        keep_records: bool = True,
        timeout_s: Optional[float] = None,
        retries: int = 0,
    ) -> DatacenterResult:
        """Place ``members``, run every busy node (sharded), aggregate.

        Each node gets a *fresh* scheduler instance (schedulers carry
        internal state) and a distinct RNG seed (``seed + node_index``).
        ``jobs`` fans nodes across the warm worker pool — results are
        byte-identical at any worker count. ``faults``/``checks``/
        ``windows`` thread through to every node's
        :func:`~repro.cluster.run.run_collocation` (per-node window
        reports are merged onto
        :attr:`DatacenterResult.window_report`); ``tracer`` receives
        every node's events, replayed in node order.
        ``keep_records=False`` exchanges only compact per-node summaries
        with the workers (no epoch records cross the process boundary).
        ``timeout_s``/``retries`` bound and re-attempt each node's run
        (see :func:`~repro.datacenter.shard.run_shards`) — a node that
        fails transiently succeeds on a retry instead of sinking the
        whole datacenter run.
        """
        assignment = placement.assign(members, self.specs)
        node_indices, outcomes = self._run_assignment(
            assignment,
            scheduler_factory,
            duration_s,
            warmup_s,
            seed,
            jobs=jobs,
            tracer=tracer,
            faults=faults,
            checks=checks,
            windows=windows,
            keep_records=keep_records,
            timeout_s=timeout_s,
            retries=retries,
        )
        summaries = tuple(outcome.summary for outcome in outcomes)
        results = tuple(
            outcome.result for outcome in outcomes if outcome.result is not None
        )
        report = None
        if windows is not None:
            report = merge_window_summaries(
                (summary.window_report for summary in summaries),
                config=WindowConfig.of(windows),
            )
        return DatacenterResult(
            placement_name=placement.name,
            scheduler_name=(
                summaries[0].scheduler_name if summaries else "n/a"
            ),
            node_results=results,
            assignment=assignment,
            node_indices=node_indices,
            node_summaries=summaries,
            window_report=report,
        )

    def compare_placements(
        self,
        members: Sequence[Member],
        placements: Sequence[Placement],
        scheduler_factory: Callable[[], Scheduler],
        duration_s: float = 120.0,
        warmup_s: float = 60.0,
        seed: int = 2023,
        *,
        jobs: Optional[int] = None,
    ) -> Dict[str, DatacenterResult]:
        """Run several placements on the same application set."""
        return {
            placement.name: self.run(
                members,
                placement,
                scheduler_factory,
                duration_s,
                warmup_s,
                seed,
                jobs=jobs,
            )
            for placement in placements
        }

    def run_epochs(
        self,
        members: Sequence[Member],
        placement: Placement,
        scheduler_factory: Callable[[], Scheduler],
        *,
        epochs: int,
        epoch_duration_s: float = 30.0,
        warmup_s: Optional[float] = None,
        seed: int = 2023,
        jobs: Optional[int] = None,
        migration: Optional[MigrationPolicy] = None,
        arrivals: Optional[Mapping[int, Sequence[Member]]] = None,
        faults: Optional[FaultPlan] = None,
        checks: Optional[Union[CheckConfig, str]] = None,
        windows: Optional[Union[WindowConfig, int, float]] = None,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        chaos: Optional[ClusterFaultPlan] = None,
        quarantine: Optional[Quarantine] = None,
        tracer: Optional[Tracer] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> DatacenterTimeline:
        """The global epoch loop: run, score, admit, migrate, repeat.

        Epoch ``e`` runs every busy node for ``epoch_duration_s`` seconds
        over segment ``[e·Δ, (e+1)·Δ)`` of the cluster's load traces
        (via :class:`~repro.workloads.loadgen.TimeShiftedLoad`), with
        node ``i`` seeded ``seed + i + e·EPOCH_SEED_STRIDE``. Nodes
        exchange only compact
        :class:`~repro.datacenter.shard.NodeEpochSummary` records with
        the coordinator — never raw epoch streams — so the loop scales
        to thousands of nodes at bounded coordinator memory.

        After each epoch the per-node measured mean ``E_S`` becomes the
        cluster's interference score vector: ``arrivals[e]`` members are
        admitted at the start of epoch ``e`` onto the lowest-scoring node
        (fewest-members node before any scores exist), and ``migration``
        proposes bounded, hysteretic BE moves that reshape the next
        epoch's assignment. ``warmup_s`` (default 20% of the epoch)
        trims each node run's convergence transient.

        **Degraded mode** arms when ``chaos`` (a
        :class:`~repro.datacenter.chaos.ClusterFaultPlan`) or
        ``quarantine`` (a :class:`~repro.datacenter.recovery.Quarantine`
        guard) is given: node failures no longer abort the run. Down
        nodes are quarantined with probation on release, their tenants
        fail over onto the lowest-``E_S`` feasible survivors (unless the
        guard disables failover), their last good summary keeps scoring
        for them up to a staleness cap, and corrupt or missing summaries
        are detected and dropped. Without a guard, any node failure
        still raises :class:`~repro.parallel.runner.ParallelRunError`
        (after ``retries`` re-attempts).

        **Checkpointing** arms when ``checkpoint_path`` is given: every
        ``checkpoint_every`` epochs the loop atomically writes a
        :class:`~repro.datacenter.recovery.DatacenterCheckpoint`;
        ``resume=True`` continues from that file (a missing file starts
        fresh), producing a timeline byte-identical to an uninterrupted
        run at any ``jobs`` — seeds are a function of the absolute epoch
        number, so skipped epochs stay aligned. ``tracer`` receives
        ``NodeQuarantined``/``NodeRecovered``/``CheckpointWritten``
        events as the loop degrades and recovers.
        """
        if epochs < 1:
            raise ConfigurationError(f"need at least one global epoch: {epochs}")
        if epoch_duration_s <= 0:
            raise ConfigurationError(
                f"epoch duration must be positive: {epoch_duration_s}"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1: {checkpoint_every}"
            )
        if resume and checkpoint_path is None:
            raise ConfigurationError("resume=True needs a checkpoint_path")
        epoch_warmup_s = (
            0.2 * epoch_duration_s if warmup_s is None else warmup_s
        )
        guard = quarantine
        if guard is None and chaos is not None:
            guard = Quarantine()
        config = {
            "seed": seed,
            "epoch_duration_s": epoch_duration_s,
            "warmup_s": epoch_warmup_s,
            "nodes": len(self.specs),
            "placement": placement.name,
            "migration": migration.name if migration is not None else "static",
            "members": sorted(m.name for m in members),
            "chaos": chaos.to_dict() if chaos is not None else None,
            "quarantine": guard.config_dict() if guard is not None else None,
        }
        assignment = placement.assign(members, self.specs)
        timeline: List[GlobalEpoch] = []
        scores: Dict[int, float] = {}
        start_epoch = 0
        if (
            resume
            and checkpoint_path is not None
            and os.path.exists(checkpoint_path)
        ):
            checkpoint = DatacenterCheckpoint.load(checkpoint_path)
            checkpoint.validate_config(config)
            if checkpoint.next_epoch > epochs:
                raise ConfigurationError(
                    f"checkpoint already covers {checkpoint.next_epoch} "
                    f"epochs; the requested target is only {epochs}"
                )
            timeline, assignment = _replay_epochs(
                checkpoint.epochs, assignment, arrivals
            )
            scores = dict(checkpoint.scores)
            start_epoch = checkpoint.next_epoch
            if migration is not None:
                migration.reset()
                migration.load_state(checkpoint.migration_state)
            if guard is not None:
                guard.load_state(checkpoint.quarantine_state)
        else:
            if migration is not None:
                migration.reset()
        for epoch in range(start_epoch, epochs):
            epoch_start_s = epoch * epoch_duration_s
            epoch_end_s = (epoch + 1) * epoch_duration_s
            recovered: List[int] = []
            down: Set[int] = set()
            failovers: Tuple[Move, ...] = ()
            parked: Tuple[str, ...] = ()
            if guard is not None:
                plan_down = (
                    set(chaos.down_nodes(epoch)) if chaos is not None else set()
                )
                for node in guard.begin_epoch():
                    if node in plan_down:
                        # Still down per the plan: keep it sitting, no
                        # recovery churn (defeats spurious flap strikes).
                        guard.refresh(node)
                    else:
                        recovered.append(node)
                        if tracer is not None:
                            tracer.emit(
                                NodeRecovered(
                                    time_s=epoch_start_s,
                                    node=node,
                                    epoch=epoch,
                                    probation_epochs=guard.probation_epochs,
                                )
                            )
                for node in sorted(plan_down):
                    if guard.is_quarantined(node):
                        guard.refresh(node)
                    else:
                        sentence = guard.report_failure(node)
                        if tracer is not None:
                            tracer.emit(
                                NodeQuarantined(
                                    time_s=epoch_start_s,
                                    node=node,
                                    epoch=epoch,
                                    until_epoch=epoch + sentence,
                                    reason="crash",
                                )
                            )
                down = plan_down | set(guard.active())
                if guard.failover and down:
                    proposals = failover_moves(
                        assignment,
                        sorted(down),
                        scores,
                        self.specs,
                        now_s=epoch_start_s,
                        horizon_s=epoch_duration_s,
                    )
                    for move in proposals:
                        assignment = assignment.moved(move.member, move.target)
                    failovers = tuple(proposals)
            admitted: List[Tuple[str, int]] = []
            for member in (arrivals or {}).get(epoch, ()):  # admission
                node = self._admission_node(scores, assignment, excluded=down)
                assignment = assignment.with_admitted(member, node)
                admitted.append((member.name, node))
            missed: Set[int] = set()
            if chaos is not None and guard is not None:
                missed = {
                    node
                    for node in assignment.busy_nodes()
                    if node not in down
                    and chaos.straggle_factor(node, epoch)
                    >= guard.straggle_threshold
                }
            if guard is not None:
                parked = tuple(
                    member.name
                    for node in sorted(down)
                    if node < len(assignment.per_node)
                    for member in assignment.per_node[node]
                )
            run_assignment = assignment
            if down or missed:
                run_assignment = assignment.cleared(sorted(down | missed))
            _, outcomes = self._run_assignment(
                run_assignment,
                scheduler_factory,
                epoch_duration_s,
                epoch_warmup_s,
                seed + epoch * EPOCH_SEED_STRIDE,
                jobs=jobs,
                tracer=None,
                faults=faults,
                checks=checks,
                windows=windows,
                keep_records=False,
                timeout_s=timeout_s,
                offset_s=epoch * epoch_duration_s,
                retries=retries,
                on_error="salvage" if guard is not None else "raise",
            )
            failed: Tuple[int, ...] = ()
            lost: Tuple[int, ...] = ()
            if guard is not None:
                assert isinstance(outcomes, ShardReport)
                for node in sorted(missed):
                    sentence = guard.report_failure(node)
                    if tracer is not None:
                        tracer.emit(
                            NodeQuarantined(
                                time_s=epoch_start_s,
                                node=node,
                                epoch=epoch,
                                until_epoch=epoch + sentence,
                                reason="straggler",
                                detail=(
                                    f"latency x"
                                    f"{chaos.straggle_factor(node, epoch):g} "
                                    f"missed the epoch deadline"
                                ),
                            )
                        )
                failed_run = set(outcomes.failed_nodes())
                details = {
                    outcomes.items[failure.index].node_index: failure.describe()
                    for failure in outcomes.failures
                }
                for node in sorted(failed_run):
                    sentence = guard.report_failure(node)
                    if tracer is not None:
                        tracer.emit(
                            NodeQuarantined(
                                time_s=epoch_end_s,
                                node=node,
                                epoch=epoch,
                                until_epoch=epoch + sentence,
                                reason="run_failed",
                                detail=details.get(node, ""),
                            )
                        )
                failed = tuple(sorted(failed_run | missed))
                completed = outcomes.completed()
                lost_plan = (
                    set(chaos.lost_summaries(epoch))
                    if chaos is not None
                    else set()
                )
                dropped: List[int] = []
                kept: List[NodeEpochSummary] = []
                for node in sorted(completed):
                    summary = completed[node].summary
                    if chaos is not None:
                        corruption = chaos.corruption_for(node, epoch)
                        if corruption is not None:
                            summary = corruption.corrupt(summary)
                    if node in lost_plan or not summary_is_sane(summary):
                        dropped.append(node)
                        continue
                    kept.append(summary)
                    guard.hold(node, summary)
                lost = tuple(dropped)
                summaries = tuple(kept)
                scores = {
                    summary.node_index: summary.mean_e_s
                    for summary in summaries
                    if summary.mean_e_s is not None
                }
                # Dark nodes keep scoring from their last good summary,
                # up to the guard's staleness cap.
                for node in sorted(down | set(lost) | set(failed)):
                    if node in scores:
                        continue
                    held = guard.held_score(node)
                    if held is not None:
                        scores[node] = held
            else:
                summaries = tuple(outcome.summary for outcome in outcomes)
                scores = {
                    summary.node_index: summary.mean_e_s
                    for summary in summaries
                    if summary.mean_e_s is not None
                }
            moves: Tuple[Move, ...] = ()
            if migration is not None and epoch + 1 < epochs:
                # Down and freshly-failed nodes are untouchable: their
                # held scores keep the books, not the migration plan.
                untouchable = down | set(failed)
                eligible = {
                    node: score
                    for node, score in scores.items()
                    if node not in untouchable
                }
                moves = tuple(
                    migration.propose(
                        eligible,
                        assignment,
                        self.specs,
                        now_s=epoch_end_s,
                        horizon_s=epoch_duration_s,
                    )
                )
            timeline.append(
                GlobalEpoch(
                    epoch=epoch,
                    start_s=epoch_start_s,
                    assignment=assignment,
                    node_summaries=summaries,
                    scores=scores,
                    moves=moves,
                    admitted=tuple(admitted),
                    quarantined=tuple(sorted(down)),
                    failed=failed,
                    recovered=tuple(recovered),
                    lost=lost,
                    failovers=failovers,
                    parked=parked,
                )
            )
            if guard is not None:
                guard.tick()
            for move in moves:
                assignment = assignment.moved(move.member, move.target)
            if (
                checkpoint_path is not None
                and (epoch + 1) % checkpoint_every == 0
            ):
                DatacenterCheckpoint(
                    next_epoch=epoch + 1,
                    config=config,
                    epochs=tuple(entry.to_dict() for entry in timeline),
                    scores=scores,
                    prior_down=tuple(sorted(down)),
                    migration_state=(
                        migration.state_dict() if migration is not None else {}
                    ),
                    quarantine_state=(
                        guard.state_dict() if guard is not None else {}
                    ),
                ).save(checkpoint_path)
                if tracer is not None:
                    tracer.emit(
                        CheckpointWritten(
                            time_s=epoch_end_s,
                            path=checkpoint_path,
                            next_epoch=epoch + 1,
                            epochs=len(timeline),
                        )
                    )
        scheduler_name = "n/a"
        for entry in timeline:
            if entry.node_summaries:
                scheduler_name = entry.node_summaries[0].scheduler_name
                break
        return DatacenterTimeline(
            placement_name=placement.name,
            scheduler_name=scheduler_name,
            migration_name=migration.name if migration is not None else "static",
            epoch_duration_s=epoch_duration_s,
            epochs=tuple(timeline),
            final_assignment=assignment,
        )

    @staticmethod
    def _admission_node(
        scores: Mapping[int, float],
        assignment: Assignment,
        excluded: Sequence[int] = (),
    ) -> int:
        """Interference-aware admission: the lowest-scoring node.

        Before any scores exist (epoch 0), fall back to the node with
        the fewest members. Ties break on the lower node index.
        ``excluded`` nodes (quarantined) are never admitted onto unless
        *every* node is excluded, in which case the exclusion is waived
        — an arrival must land somewhere.
        """
        exclude = set(excluded)
        candidates = [
            node
            for node in range(len(assignment.per_node))
            if node not in exclude
        ]
        if not candidates:
            candidates = list(range(len(assignment.per_node)))
        scored = sorted(node for node in candidates if node in scores)
        if scored:
            return min(scored, key=lambda node: scores[node])
        return min(
            candidates,
            key=lambda node: (len(assignment.per_node[node]), node),
        )
