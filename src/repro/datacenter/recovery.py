"""Degraded-mode machinery: quarantine, failover and checkpoint/resume.

The global epoch loop treats node failure as the steady state, not an
exception, once a :class:`~repro.datacenter.chaos.ClusterFaultPlan` or a
:class:`Quarantine` guard is attached. Three cooperating pieces live
here:

* :class:`Quarantine` — the coordinator's per-node health book-keeping:
  failed nodes sit out a quarantine window (doubling for repeat
  offenders, capped), re-enter on probation, and have their last-good
  :class:`~repro.datacenter.shard.NodeEpochSummary` held for
  score-keeping up to a staleness cap — the same stale-telemetry
  tolerance ARQ's cooldown gives a single node, one level up.
* :func:`failover_moves` — when a node goes down, its tenants are
  migrated onto the lowest-``E_S`` feasible survivors (LC applications
  first — they carry the QoS), reusing the migration layer's
  window-aware capacity guard; tenants that fit nowhere stay parked on
  the dead node until capacity or the node returns.
* :class:`DatacenterCheckpoint` — canonical-JSON snapshots of the loop's
  replayable state every K epochs. Because epoch seeds are a pure
  function of the *absolute* epoch number (``seed + i + e·stride``) and
  every assignment mutation (failovers → admissions → moves) is recorded
  per epoch, resuming from a checkpoint replays to a timeline
  byte-identical to the uninterrupted run at any ``--jobs``.

Everything here is deterministic: decisions are pure functions of the
fault plan, the recorded scores and the guard's explicit state — never
of wall-clock time or arrival order.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datacenter.migration import Move, _pressure_at
from repro.datacenter.placement import Assignment, _is_lc
from repro.datacenter.shard import NodeEpochSummary
from repro.errors import ConfigurationError
from repro.server.spec import NodeSpec

#: Checkpoint wire-format version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


def summary_is_sane(summary: NodeEpochSummary) -> bool:
    """Whether a node summary's entropy means are plausible telemetry.

    The entropies of Eq. 7 are non-negative and finite by construction,
    so a NaN or negative mean can only be corruption in flight — the
    coordinator's cheap end-to-end integrity gate. A summary with *no*
    measured epochs (means ``None``) is empty, not insane.
    """
    for value in (summary.mean_e_s, summary.mean_e_lc, summary.mean_e_be):
        if value is not None and (math.isnan(value) or value < 0.0):
            return False
    return True


@dataclass
class Quarantine:
    """Per-node quarantine, probation and stale-score book-keeping.

    A reported failure puts the node in quarantine for
    ``quarantine_epochs`` global epochs — doubled per repeat offence up
    to ``backoff_cap``× (the flap defence). On release the node serves
    again but stays **on probation** for ``probation_epochs`` epochs: a
    relapse during probation escalates straight to the longer window,
    surviving probation clears the slate.

    While a node is dark (down, or its summary lost/corrupt) the guard
    holds its last good summary and serves its ``E_S`` for score-keeping
    up to ``staleness_cap_epochs`` epochs old; past the cap the node
    simply has no score (absent from the epoch's score vector) until it
    reports again.

    ``straggle_threshold`` is the latency multiplier at or above which a
    straggling node's report misses the epoch deadline entirely and is
    treated as a failure; slower-but-under-threshold nodes are absorbed.
    ``failover=False`` keeps the guard but disables tenant evacuation
    (the fig16 "static" plane).
    """

    quarantine_epochs: int = 2
    probation_epochs: int = 2
    staleness_cap_epochs: int = 3
    straggle_threshold: float = 3.0
    failover: bool = True
    backoff_cap: int = 4

    _sitting: Dict[int, int] = field(default_factory=dict, repr=False)
    _probation: Dict[int, int] = field(default_factory=dict, repr=False)
    _strikes: Dict[int, int] = field(default_factory=dict, repr=False)
    _held: Dict[int, Tuple[NodeEpochSummary, int]] = field(
        default_factory=dict, repr=False
    )
    _released: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.quarantine_epochs < 1:
            raise ConfigurationError(
                f"quarantine_epochs must be >= 1: {self.quarantine_epochs}"
            )
        if self.probation_epochs < 0:
            raise ConfigurationError(
                f"probation_epochs cannot be negative: {self.probation_epochs}"
            )
        if self.staleness_cap_epochs < 0:
            raise ConfigurationError(
                f"staleness_cap_epochs cannot be negative: "
                f"{self.staleness_cap_epochs}"
            )
        if self.straggle_threshold < 1.0:
            raise ConfigurationError(
                f"straggle_threshold must be >= 1: {self.straggle_threshold}"
            )
        if self.backoff_cap < 1:
            raise ConfigurationError(
                f"backoff_cap must be >= 1: {self.backoff_cap}"
            )

    # -- queries -----------------------------------------------------------

    def active(self) -> Tuple[int, ...]:
        """Sorted indices of nodes currently quarantined."""
        return tuple(sorted(self._sitting))

    def is_quarantined(self, node: int) -> bool:
        """Whether ``node`` is currently quarantined."""
        return node in self._sitting

    def on_probation(self) -> Tuple[int, ...]:
        """Sorted indices of released nodes still on probation."""
        return tuple(sorted(self._probation))

    def held_score(self, node: int) -> Optional[float]:
        """The node's held ``E_S`` if fresh enough, else ``None``."""
        entry = self._held.get(node)
        if entry is None:
            return None
        summary, age = entry
        if age > self.staleness_cap_epochs:
            return None
        return summary.mean_e_s

    def held_summary(self, node: int) -> Optional[NodeEpochSummary]:
        """The node's last good summary regardless of age (``None`` if none)."""
        entry = self._held.get(node)
        return entry[0] if entry is not None else None

    # -- transitions -------------------------------------------------------

    def report_failure(self, node: int) -> int:
        """Quarantine ``node``; returns the sentence length in epochs.

        Each repeat offence doubles the window (capped at
        ``backoff_cap``× the base); a failure during probation counts as
        a repeat, which is exactly what defeats a flapping node.
        """
        strikes = self._strikes.get(node, 0) + 1
        self._strikes[node] = strikes
        penalty = self.quarantine_epochs * min(
            2 ** (strikes - 1), self.backoff_cap
        )
        self._sitting[node] = max(self._sitting.get(node, 0), penalty)
        self._probation.pop(node, None)
        return self._sitting[node]

    def refresh(self, node: int) -> None:
        """Keep a still-down node quarantined at least the base window."""
        self._sitting[node] = max(
            self._sitting.get(node, 0), self.quarantine_epochs
        )

    def hold(self, node: int, summary: NodeEpochSummary) -> None:
        """Record ``node``'s fresh good summary (age resets to zero)."""
        self._held[node] = (summary, 0)

    def begin_epoch(self) -> Tuple[int, ...]:
        """Nodes re-entering service this epoch (sorted); starts probation."""
        released = tuple(sorted(self._released))
        self._released.clear()
        return released

    def tick(self) -> None:
        """Advance one global epoch: age scores, serve sentences, parole.

        Call once at the end of every epoch. Quarantine counters count
        down; nodes reaching zero are queued for release at the next
        :meth:`begin_epoch` and put on probation. Probation counters for
        serving nodes count down too; at zero the slate (strike count)
        is wiped. Held summaries age by one epoch.
        """
        self._held = {
            node: (summary, age + 1)
            for node, (summary, age) in self._held.items()
        }
        sitting: Dict[int, int] = {}
        newly_released: List[int] = []
        for node in sorted(self._sitting):
            left = self._sitting[node] - 1
            if left > 0:
                sitting[node] = left
            else:
                self._released.append(node)
                newly_released.append(node)
                if not self.probation_epochs:
                    self._strikes.pop(node, None)
        self._sitting = sitting
        probation: Dict[int, int] = {}
        for node in sorted(self._probation):
            left = self._probation[node] - 1
            if left > 0:
                probation[node] = left
            else:
                self._strikes.pop(node, None)
        # Probation for nodes released *this* tick starts now and counts
        # down on subsequent ticks — it must cover the epochs they serve
        # after release, not be consumed in the releasing tick itself.
        if self.probation_epochs:
            for node in newly_released:
                probation[node] = self.probation_epochs
        self._probation = probation

    # -- serialisation (checkpoint support) --------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """The guard's mutable state as a JSON-safe dict."""
        return {
            "sitting": {str(n): v for n, v in sorted(self._sitting.items())},
            "probation": {
                str(n): v for n, v in sorted(self._probation.items())
            },
            "strikes": {str(n): v for n, v in sorted(self._strikes.items())},
            "held": {
                str(n): {"age": age, "summary": summary.to_dict()}
                for n, (summary, age) in sorted(self._held.items())
            },
            "released": sorted(self._released),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore state previously captured with :meth:`state_dict`."""
        self._sitting = {int(n): v for n, v in state.get("sitting", {}).items()}
        self._probation = {
            int(n): v for n, v in state.get("probation", {}).items()
        }
        self._strikes = {int(n): v for n, v in state.get("strikes", {}).items()}
        self._held = {
            int(n): (NodeEpochSummary.from_dict(entry["summary"]), entry["age"])
            for n, entry in state.get("held", {}).items()
        }
        self._released = [int(n) for n in state.get("released", [])]

    def config_dict(self) -> Dict[str, Any]:
        """The guard's immutable configuration (checkpoint fingerprint)."""
        return {
            "quarantine_epochs": self.quarantine_epochs,
            "probation_epochs": self.probation_epochs,
            "staleness_cap_epochs": self.staleness_cap_epochs,
            "straggle_threshold": self.straggle_threshold,
            "failover": self.failover,
            "backoff_cap": self.backoff_cap,
        }


def failover_moves(
    assignment: Assignment,
    down: Sequence[int],
    scores: Mapping[int, float],
    specs: Sequence[NodeSpec],
    *,
    now_s: float = 0.0,
    horizon_s: float = 0.0,
) -> List[Move]:
    """Evacuate down nodes' tenants onto the best feasible survivors.

    For each down node (ascending index), tenants leave LC-first (they
    carry the QoS), heaviest first within a class. Each tenant lands on
    the survivor with the lowest interference score (nodes without a
    score rank as 0.0 — an idle node is a perfect host), breaking ties
    by upcoming-window pressure then node index, subject to the same
    capacity guard migration uses: the survivor plus the tenant must fit
    within one node's worth of resources over the next epoch's load
    window. Tenants that fit nowhere are left parked on the down node
    (the caller keeps them out of the epoch run).

    Deterministic: a pure function of the inputs. Returned
    :class:`~repro.datacenter.migration.Move` records carry the
    donor/recipient score gap where both scores exist, else 0.0.
    """
    down_set: Set[int] = set(down)
    survivors = [
        node
        for node in range(len(assignment.per_node))
        if node not in down_set and node < len(specs)
    ]
    if not survivors:
        return []
    buckets = [list(bucket) for bucket in assignment.per_node]
    pressures = {
        node: _pressure_at(buckets[node], specs[node], now_s, horizon_s)
        for node in survivors
    }
    moves: List[Move] = []
    for source in sorted(down_set):
        if source >= len(buckets) or not buckets[source]:
            continue
        tenants = sorted(
            buckets[source],
            key=lambda m: (
                0 if _is_lc(m) else 1,
                -_pressure_at([m], specs[source], now_s, horizon_s),
                m.name,
            ),
        )
        for tenant in tenants:
            weight = {
                node: _pressure_at([tenant], specs[node], now_s, horizon_s)
                for node in survivors
            }
            ranked = sorted(
                survivors,
                key=lambda node: (scores.get(node, 0.0), pressures[node], node),
            )
            target = next(
                (
                    node
                    for node in ranked
                    if pressures[node] + weight[node] <= 1.0 + 1e-9
                ),
                None,
            )
            if target is None:
                continue
            buckets[source] = [
                m for m in buckets[source] if m.name != tenant.name
            ]
            buckets[target].append(tenant)
            pressures[target] += weight[target]
            gap = scores.get(source, 0.0) - scores.get(target, 0.0)
            moves.append(
                Move(
                    member=tenant.name,
                    source=source,
                    target=target,
                    score_gap=gap,
                )
            )
    return moves


@dataclass(frozen=True)
class DatacenterCheckpoint:
    """A canonical-JSON snapshot of the epoch loop's replayable state.

    Written after epoch ``next_epoch - 1`` completed; resuming replays
    the recorded ``epochs`` payloads (reconstructing every assignment
    mutation in failovers → admissions → moves order) and continues the
    live loop at ``next_epoch``. ``config`` fingerprints everything the
    resumed run must agree on — deliberately **excluding** the total
    epoch target, so a run checkpointed at 2 epochs can resume to 8: a
    fault plan and the per-epoch seed formula depend only on absolute
    epoch numbers, never on the horizon.
    """

    next_epoch: int
    config: Mapping[str, Any]
    epochs: Tuple[Mapping[str, Any], ...]
    scores: Mapping[int, float]
    prior_down: Tuple[int, ...] = ()
    migration_state: Mapping[str, Any] = field(default_factory=dict)
    quarantine_state: Mapping[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of the whole checkpoint."""
        return {
            "version": self.version,
            "next_epoch": self.next_epoch,
            "config": dict(self.config),
            "epochs": [dict(epoch) for epoch in self.epochs],
            "scores": {
                str(node): score for node, score in sorted(self.scores.items())
            },
            "prior_down": list(self.prior_down),
            "migration_state": dict(self.migration_state),
            "quarantine_state": dict(self.quarantine_state),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatacenterCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint version {version!r} "
                f"(this build writes v{CHECKPOINT_VERSION})"
            )
        return cls(
            next_epoch=payload["next_epoch"],
            config=dict(payload.get("config", {})),
            epochs=tuple(dict(e) for e in payload.get("epochs", ())),
            scores={
                int(node): score
                for node, score in payload.get("scores", {}).items()
            },
            prior_down=tuple(payload.get("prior_down", ())),
            migration_state=dict(payload.get("migration_state", {})),
            quarantine_state=dict(payload.get("quarantine_state", {})),
            version=version,
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) of the checkpoint."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "DatacenterCheckpoint":
        """Parse a checkpoint from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid checkpoint JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str) -> str:
        """Atomically write the checkpoint to ``path``; returns the path.

        Written to a sibling temp file then renamed, so a mid-write kill
        never leaves a torn checkpoint behind — the previous snapshot
        survives intact.
        """
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "DatacenterCheckpoint":
        """Read a checkpoint previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def validate_config(self, expected: Mapping[str, Any]) -> None:
        """Fail fast if the resumed run's configuration drifted.

        Compares canonical JSON of both fingerprints so nested dicts and
        tuple/list differences don't produce false mismatches.
        """
        ours = json.dumps(self.to_dict()["config"], sort_keys=True)
        theirs = json.dumps(
            DatacenterCheckpoint(
                next_epoch=0, config=dict(expected), epochs=(), scores={}
            ).to_dict()["config"],
            sort_keys=True,
        )
        if ours != theirs:
            raise ConfigurationError(
                "checkpoint configuration mismatch: the resumed run's "
                "placement/seed/epoch-duration/chaos settings differ from "
                "the checkpointed run's; resume with identical settings "
                "(only the epoch target may change)"
            )
