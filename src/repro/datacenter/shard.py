"""Sharded node execution: fan a datacenter's nodes over worker processes.

One datacenter run is hundreds-to-thousands of *independent* node
simulations — exactly the shape :mod:`repro.parallel` was built for. This
module turns per-node work into :class:`NodeRun` items, executes them on
the warm chunked pool via
:func:`repro.parallel.runner.run_with_recovery`, and ships back
:class:`NodeEpochSummary` values: compact, exact per-node aggregates
(per-application mean observations, mean entropies, violation counts, an
optional bounded :class:`~repro.obs.windows.WindowSummary`) instead of
raw epoch streams. Full :class:`~repro.cluster.run.RunResult` objects can
ride along when requested — they cross the process boundary on the
``epoch-records/v1`` columnar wire (:mod:`repro.cluster.epoch`), so even
the keep-everything mode stays off the dispatch critical path.

Determinism: a node's outcome is a pure function of its collocation
(seeded ``seed + node_index``) and scheduler factory, summaries are
computed inside the worker with plain left-to-right arithmetic, and
results are re-assembled in node-index order — so a sharded run is
**byte-identical** at any ``--jobs`` setting, including the in-process
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.check.invariants import CheckConfig
from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult, run_collocation
from repro.entropy.records import BEObservation, LCObservation
from repro.errors import ConfigurationError, MeasurementError
from repro.faults.plan import FaultPlan
from repro.obs.events import CollectingTracer, TraceEvent
from repro.obs.windows import WindowConfig, WindowSummary
from repro.parallel.runner import (
    ParallelRunError,
    PointFailure,
    resolve_jobs,
    run_with_recovery,
    summarize_failures,
)
from repro.schedulers.base import Scheduler


@dataclass(frozen=True)
class NodeEpochSummary:
    """Compact, exact summary of one node's run — the shard wire format.

    This is what worker processes exchange with the coordinator instead
    of raw epoch records: per-application mean observations (the same
    quantities :meth:`~repro.datacenter.cluster.DatacenterResult.pooled_observation`
    pools), mean entropies, QoS counts and an optional bounded window
    report. Everything is computed worker-side with plain left-to-right
    arithmetic over the measured records, so a summary is bit-identical
    wherever it is computed.

    ``measured_epochs == 0`` marks a node whose run produced no
    post-warm-up epochs (its means are ``None`` and its observation
    tuples empty); downstream pooling decides whether that is an error
    or a skip (see ``DatacenterResult.pooled_observation``).
    """

    node_index: int
    scheduler_name: str
    seed: int
    epochs: int
    measured_epochs: int
    mean_e_s: Optional[float]
    mean_e_lc: Optional[float]
    mean_e_be: Optional[float]
    violations: int
    lc: Tuple[LCObservation, ...]
    be: Tuple[BEObservation, ...]
    check_violation_count: int = 0
    #: Bounded window summary (when the run was window-armed); excluded
    #: from equality so windowed and plain shard runs compare.
    window_report: Optional[WindowSummary] = field(
        default=None, repr=False, compare=False
    )

    @property
    def interference_score(self) -> Optional[float]:
        """The node's interference score: its measured mean ``E_S``.

        The paper's single figure of merit, used one level up — the
        global placement/migration layer ranks nodes by it exactly as
        the Alibaba scoring mechanism ranks hosts by interference
        intensity. ``None`` when the node measured no epochs.
        """
        return self.mean_e_s

    def yield_fraction(self) -> float:
        """Ratio of this node's LC applications meeting their QoS."""
        if not self.lc:
            return 1.0
        satisfied = sum(
            1 for obs in self.lc if obs.measured_ms <= obs.threshold_ms
        )
        return satisfied / len(self.lc)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "NodeEpochSummary":
        """Rebuild a summary from :meth:`to_dict` output.

        The inverse of the wire dict up to the window report (which
        ``to_dict`` deliberately omits): every scoring field — means,
        violation counts, per-application observations — round-trips
        exactly, which is what checkpoint/resume byte-identity rests on.
        """
        return cls(
            node_index=payload["node_index"],
            scheduler_name=payload["scheduler"],
            seed=payload["seed"],
            epochs=payload["epochs"],
            measured_epochs=payload["measured_epochs"],
            mean_e_s=payload["mean_e_s"],
            mean_e_lc=payload["mean_e_lc"],
            mean_e_be=payload["mean_e_be"],
            violations=payload["violations"],
            check_violation_count=payload.get("check_violations", 0),
            lc=tuple(
                LCObservation(
                    name=obs["name"],
                    ideal_ms=obs["ideal_ms"],
                    measured_ms=obs["measured_ms"],
                    threshold_ms=obs["threshold_ms"],
                )
                for obs in payload.get("lc", ())
            ),
            be=tuple(
                BEObservation(
                    name=obs["name"],
                    ipc_solo=obs["ipc_solo"],
                    ipc_real=obs["ipc_real"],
                )
                for obs in payload.get("be", ())
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (window report omitted — export separately)."""
        return {
            "node_index": self.node_index,
            "scheduler": self.scheduler_name,
            "seed": self.seed,
            "epochs": self.epochs,
            "measured_epochs": self.measured_epochs,
            "mean_e_s": self.mean_e_s,
            "mean_e_lc": self.mean_e_lc,
            "mean_e_be": self.mean_e_be,
            "violations": self.violations,
            "check_violations": self.check_violation_count,
            "lc": [
                {
                    "name": obs.name,
                    "ideal_ms": obs.ideal_ms,
                    "measured_ms": obs.measured_ms,
                    "threshold_ms": obs.threshold_ms,
                }
                for obs in self.lc
            ],
            "be": [
                {
                    "name": obs.name,
                    "ipc_solo": obs.ipc_solo,
                    "ipc_real": obs.ipc_real,
                }
                for obs in self.be
            ],
        }


def summarize_node(node_index: int, result: RunResult) -> NodeEpochSummary:
    """Fold one node's :class:`~repro.cluster.run.RunResult` into a summary.

    The per-application means are exactly the ones the datacenter-level
    pooled observation is built from, computed in the profile-declaration
    order the run itself used. A run with no post-warm-up epochs yields
    an *empty* summary (``measured_epochs=0``, means ``None``) rather
    than raising — the coordinator owns that policy decision.
    """
    try:
        records = result.measured_records()
    except MeasurementError:
        records = []
    lc: List[LCObservation] = []
    be: List[BEObservation] = []
    if records:
        for name, profile in result.collocation.lc_profiles.items():
            samples = [r.lc[name] for r in records if name in r.lc]
            if not samples:
                continue
            lc.append(
                LCObservation(
                    name=name,
                    ideal_ms=sum(s.ideal_ms for s in samples) / len(samples),
                    measured_ms=sum(s.tail_ms for s in samples) / len(samples),
                    threshold_ms=profile.threshold_ms,
                )
            )
        for name, profile in result.collocation.be_profiles.items():
            samples = [r.be[name].ipc for r in records if name in r.be]
            if not samples:
                continue
            be.append(
                BEObservation(
                    name=name,
                    ipc_solo=profile.ipc_solo,
                    ipc_real=sum(samples) / len(samples),
                )
            )
    return NodeEpochSummary(
        node_index=node_index,
        scheduler_name=result.scheduler_name,
        seed=result.collocation.seed,
        epochs=len(result.records),
        measured_epochs=len(records),
        mean_e_s=result.mean_e_s() if records else None,
        mean_e_lc=result.mean_e_lc() if records else None,
        mean_e_be=result.mean_e_be() if records else None,
        violations=sum(r.violations() for r in records),
        lc=tuple(lc),
        be=tuple(be),
        check_violation_count=len(result.check_violations),
        window_report=result.window_report,
    )


@dataclass(frozen=True)
class NodeRun:
    """One node's unit of sharded work: a collocation plus run settings.

    ``scheduler_factory`` must be picklable for the pooled path (the
    strategy classes themselves — ``ARQScheduler``, ... — are; lambdas
    are not, but still work on the ``jobs=1`` serial path).
    ``keep_records=False`` ships only the :class:`NodeEpochSummary` back
    from the worker — the compact-exchange mode the global epoch loop
    runs in; ``True`` also returns the full result on the columnar wire.
    """

    node_index: int
    collocation: Collocation
    scheduler_factory: Callable[[], Scheduler]
    duration_s: float
    warmup_s: float
    faults: Optional[FaultPlan] = None
    checks: Optional[CheckConfig] = None
    windows: Optional[WindowConfig] = None
    keep_records: bool = True
    collect_trace: bool = False

    def describe(self) -> str:
        """Human-readable parameter summary (used in error messages)."""
        lc = ",".join(m.name for m in self.collocation.lc)
        be = ",".join(m.name for m in self.collocation.be)
        return (
            f"node={self.node_index} lc=[{lc}] be=[{be}] "
            f"duration={self.duration_s}s warmup={self.warmup_s}s "
            f"seed={self.collocation.seed}"
        )


@dataclass(frozen=True)
class NodeOutcome:
    """What one sharded node run ships back to the coordinator."""

    summary: NodeEpochSummary
    result: Optional[RunResult] = None
    events: Tuple[TraceEvent, ...] = ()


def _run_node(item: NodeRun) -> NodeOutcome:
    """Worker entry point (module-level so it pickles for the pool)."""
    collector = CollectingTracer() if item.collect_trace else None
    result = run_collocation(
        item.collocation,
        item.scheduler_factory(),
        item.duration_s,
        item.warmup_s,
        tracer=collector,
        faults=item.faults,
        checks=item.checks,
        windows=item.windows,
    )
    summary = summarize_node(item.node_index, result)
    return NodeOutcome(
        summary=summary,
        result=result if item.keep_records else None,
        events=tuple(collector.events) if collector is not None else (),
    )


#: Failure policies :func:`run_shards` accepts.
ON_ERROR_MODES = ("raise", "salvage")


@dataclass(frozen=True)
class ShardReport:
    """Partial node outcomes plus a structured per-node failure report.

    The datacenter-shaped sibling of
    :class:`~repro.parallel.runner.BatchReport`, returned by
    :func:`run_shards` in ``on_error="salvage"`` mode. ``outcomes``
    aligns with submission order (``None`` where the node's run
    ultimately failed); :meth:`completed` re-keys survivors by their
    **node index** — the currency of the datacenter layer — and
    ``failed_nodes`` names the casualties the degraded epoch loop feeds
    into quarantine.
    """

    items: Tuple[NodeRun, ...]
    outcomes: Tuple[Optional[NodeOutcome], ...]
    failures: Tuple[PointFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every node run succeeded."""
        return not self.failures

    def completed(self) -> Dict[int, NodeOutcome]:
        """Map node index → outcome for every node that succeeded."""
        return {
            item.node_index: outcome
            for item, outcome in zip(self.items, self.outcomes)
            if outcome is not None
        }

    def failed_nodes(self) -> Tuple[int, ...]:
        """Sorted node indices whose runs exhausted every attempt."""
        return tuple(
            sorted(self.items[failure.index].node_index for failure in self.failures)
        )

    def failure_report(self) -> List[Dict[str, object]]:
        """JSON-safe failure dicts, each tagged with its node index."""
        report = summarize_failures(self.failures)
        for entry, failure in zip(report, self.failures):
            entry["node_index"] = self.items[failure.index].node_index
        return report


def run_shards(
    items: Sequence[NodeRun],
    jobs: Optional[int] = None,
    *,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    on_error: str = "raise",
) -> Union[List[NodeOutcome], ShardReport]:
    """Execute every node run, returning outcomes in submission order.

    ``jobs=1`` runs serially in-process through the *same* worker
    function the pool uses, so the two paths are byte-identical.
    ``timeout_s``/``retries`` follow
    :func:`repro.parallel.runner.run_with_recovery` (per-node timeout,
    deterministic backoff, stuck-worker recycling).

    ``on_error="raise"`` (default) raises
    :class:`~repro.parallel.runner.ParallelRunError` at the first
    exhausted failure, carrying the failing node's parameters and every
    outcome completed before it, and returns a plain outcome list when
    everything succeeds. ``on_error="salvage"`` never raises for node
    failures: every item runs to completion and a :class:`ShardReport`
    ships the partial outcomes plus a structured per-node failure
    report — the mode the degraded-mode epoch loop runs in.
    """
    if on_error not in ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    if not items:
        return ShardReport(items=(), outcomes=()) if on_error == "salvage" else []
    workers = min(resolve_jobs(jobs), len(items))
    outcomes, failures = run_with_recovery(
        _run_node,
        items,
        jobs=workers,
        timeout_s=timeout_s,
        retries=retries,
        stop_on_failure=on_error == "raise",
    )
    if on_error == "salvage":
        return ShardReport(
            items=tuple(items),
            outcomes=tuple(outcomes),
            failures=tuple(failures),
        )
    if failures:
        first = failures[0]
        completed = {
            index: outcome
            for index, outcome in enumerate(outcomes)
            if outcome is not None
        }
        raise ParallelRunError(
            first.index, items[first.index], first.error, completed=completed
        ) from first.error
    return list(outcomes)
