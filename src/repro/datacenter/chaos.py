"""Typed, deterministic cluster-level fault plans for the epoch loop.

:mod:`repro.faults` injects adversity *inside* one node's run; this module
injects adversity *between* nodes — the failure modes a real cluster
manager treats as the steady state: nodes crashing, straggling past the
epoch deadline, flapping up and down, and losing or corrupting the
compact :class:`~repro.datacenter.shard.NodeEpochSummary` reports the
coordinator steers by.

Every spec is a frozen dataclass over a half-open **epoch window**
``[epoch, epoch + duration_epochs)`` on the global epoch counter — a
cluster fault's effect is a pure function of ``(node, epoch)``, so a
seeded :meth:`~repro.datacenter.cluster.Datacenter.run_epochs` with a
plan attached stays byte-identical across ``--jobs`` values, repeat runs
and checkpoint/resume boundaries. Plans round-trip through JSON exactly
like :class:`~repro.faults.plan.FaultPlan` (``to_json``/``from_json``/
``save``/``load``) for the CLI's ``--chaos plan.json`` flag, and
:func:`cluster_fault_preset` builds named schedules scaled to a cluster
size (the CI smoke and fig16 use these).

Two families, mirroring the single-node split:

* **availability faults** (:class:`NodeCrash`, :class:`NodeStraggle`,
  :class:`NodeFlap`) change which nodes actually serve an epoch;
* **telemetry faults** (:class:`SummaryLoss`, :class:`SummaryCorruption`)
  leave the node serving but starve or poison the coordinator's view —
  the degraded loop must keep score from held last-good summaries.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple

from repro.datacenter.shard import NodeEpochSummary
from repro.errors import FaultError

#: Registry of cluster fault kinds, filled by ``__init_subclass__``.
CLUSTER_FAULT_KINDS: Dict[str, type] = {}

#: Summary-corruption modes :class:`SummaryCorruption` understands. Both
#: are *detectably* insane (NaN or negative entropies), so the degraded
#: loop's sanity gate catches and discards them — the damage they do is
#: the telemetry gap, never a silently-poisoned score.
SUMMARY_CORRUPTION_MODES = ("nan", "negative")


@dataclass(frozen=True)
class NodeFaultSpec:
    """Base class of all cluster fault specs: a node plus an epoch window.

    ``kind`` is a class attribute (stable wire name); the fault is active
    over the half-open window ``[epoch, epoch + duration_epochs)`` of the
    global epoch counter. Subclasses add flat, JSON-safe fields.
    """

    kind: ClassVar[str] = "node_fault"

    node: int = 0
    epoch: int = 0
    duration_epochs: int = 1

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind")
        if kind is not None:
            CLUSTER_FAULT_KINDS[kind] = cls

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"fault node must be >= 0, got {self.node}")
        if self.epoch < 0:
            raise FaultError(f"fault epoch must be >= 0, got {self.epoch}")
        if self.duration_epochs < 1:
            raise FaultError(
                f"fault duration must be >= 1 epoch, got {self.duration_epochs}"
            )

    @property
    def end_epoch(self) -> int:
        """The first epoch at which the fault is no longer active."""
        return self.epoch + self.duration_epochs

    def active_at(self, epoch: int) -> bool:
        """Whether the fault is active at global epoch ``epoch``."""
        return self.epoch <= epoch < self.end_epoch

    def down_at(self, epoch: int) -> bool:
        """Whether the fault takes the node out of service at ``epoch``."""
        return False

    def describe(self) -> str:
        """Human-readable one-liner (used in trace events and reports)."""
        extras = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name not in ("node", "epoch", "duration_epochs")
        )
        window = f"epochs [{self.epoch}, {self.end_epoch})"
        return f"{self.kind} node {self.node} {window}" + (
            f" {extras}" if extras else ""
        )

    def to_dict(self) -> Dict[str, Any]:
        """A flat JSON-safe dict including the ``kind`` discriminator."""
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


def cluster_fault_from_dict(payload: Mapping[str, Any]) -> NodeFaultSpec:
    """Rebuild a :class:`NodeFaultSpec` from :meth:`NodeFaultSpec.to_dict`.

    Raises :class:`~repro.errors.FaultError` for unknown kinds or payloads
    that do not match the spec's fields.
    """
    kind = payload.get("kind")
    cls = CLUSTER_FAULT_KINDS.get(kind)
    if cls is None:
        raise FaultError(
            f"unknown cluster fault kind {kind!r}; "
            f"known kinds: {sorted(CLUSTER_FAULT_KINDS)}"
        )
    names = {f.name for f in fields(cls)}
    kwargs = {key: value for key, value in payload.items() if key != "kind"}
    unknown = set(kwargs) - names
    if unknown:
        raise FaultError(
            f"unexpected fields {sorted(unknown)} for cluster fault {kind!r}"
        )
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise FaultError(
            f"malformed payload for cluster fault {kind!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class NodeCrash(NodeFaultSpec):
    """The node is hard-down for the whole window: it serves nothing."""

    kind: ClassVar[str] = "node_crash"

    def down_at(self, epoch: int) -> bool:
        """Down for every epoch of the window."""
        return self.active_at(epoch)


@dataclass(frozen=True)
class NodeStraggle(NodeFaultSpec):
    """The node runs ``factor``× slower than the epoch deadline assumes.

    A per-epoch latency multiplier on the node's report turnaround: the
    node still serves, but its summary arrives ``factor`` epochs-worth of
    time late. The degraded loop compares the factor against the
    quarantine's ``straggle_threshold`` — below it the (late) summary is
    accepted; at or above it the epoch deadline is missed, the summary is
    discarded and the node is quarantined exactly as if it had failed.
    """

    kind: ClassVar[str] = "node_straggle"

    factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.factor >= 1.0:
            raise FaultError(
                f"straggle factor must be >= 1, got {self.factor}"
            )


@dataclass(frozen=True)
class NodeFlap(NodeFaultSpec):
    """The node alternates down/up phases inside the window.

    Starting at ``epoch``, the node is down for ``down_epochs``, up for
    ``up_epochs``, down again, ... until the window closes — the
    pathological fast-rejoin pattern that defeats naive re-admission and
    is exactly what the quarantine's probation backoff exists for.
    """

    kind: ClassVar[str] = "node_flap"

    down_epochs: int = 1
    up_epochs: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_epochs < 1:
            raise FaultError(
                f"flap down_epochs must be >= 1, got {self.down_epochs}"
            )
        if self.up_epochs < 1:
            raise FaultError(
                f"flap up_epochs must be >= 1, got {self.up_epochs}"
            )

    def down_at(self, epoch: int) -> bool:
        """Down during the down phase of each flap period."""
        if not self.active_at(epoch):
            return False
        phase = (epoch - self.epoch) % (self.down_epochs + self.up_epochs)
        return phase < self.down_epochs


@dataclass(frozen=True)
class SummaryLoss(NodeFaultSpec):
    """The node serves the epoch but its summary report never arrives."""

    kind: ClassVar[str] = "summary_loss"


@dataclass(frozen=True)
class SummaryCorruption(NodeFaultSpec):
    """The node's summary arrives with poisoned entropy fields.

    ``mode="nan"`` replaces the mean entropies with NaN; ``"negative"``
    negates them (entropies are non-negative by construction, Eq. 7).
    Both are caught by the coordinator's sanity gate and treated as a
    summary loss — the point is exercising the *detection* path.
    """

    kind: ClassVar[str] = "summary_corruption"

    mode: str = "nan"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in SUMMARY_CORRUPTION_MODES:
            raise FaultError(
                f"unknown summary corruption mode {self.mode!r}; "
                f"choose from {SUMMARY_CORRUPTION_MODES}"
            )

    def corrupt(self, summary: NodeEpochSummary) -> NodeEpochSummary:
        """The summary with its mean entropies poisoned per ``mode``."""
        def poison(value: Optional[float]) -> Optional[float]:
            if value is None:
                return None
            return math.nan if self.mode == "nan" else -abs(value) - 1.0

        return replace(
            summary,
            mean_e_s=poison(summary.mean_e_s),
            mean_e_lc=poison(summary.mean_e_lc),
            mean_e_be=poison(summary.mean_e_be),
        )


@dataclass(frozen=True)
class ClusterFaultPlan:
    """An immutable, JSON-round-trippable schedule of cluster faults."""

    faults: Tuple[NodeFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, NodeFaultSpec):
                raise FaultError(
                    f"ClusterFaultPlan entries must be NodeFaultSpec values, "
                    f"got {type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # -- per-epoch queries (all pure functions of the plan) ----------------

    def down_nodes(self, epoch: int) -> Tuple[int, ...]:
        """Sorted indices of nodes out of service at ``epoch``."""
        return tuple(
            sorted({f.node for f in self.faults if f.down_at(epoch)})
        )

    def straggle_factor(self, node: int, epoch: int) -> float:
        """The node's latency multiplier at ``epoch`` (1.0 when healthy)."""
        factor = 1.0
        for fault in self.faults:
            if (
                isinstance(fault, NodeStraggle)
                and fault.node == node
                and fault.active_at(epoch)
            ):
                factor = max(factor, fault.factor)
        return factor

    def lost_summaries(self, epoch: int) -> Tuple[int, ...]:
        """Sorted indices of nodes whose summary is dropped at ``epoch``."""
        return tuple(
            sorted(
                {
                    f.node
                    for f in self.faults
                    if isinstance(f, SummaryLoss) and f.active_at(epoch)
                }
            )
        )

    def corruption_for(
        self, node: int, epoch: int
    ) -> Optional[SummaryCorruption]:
        """The first active corruption spec for ``node`` (plan order)."""
        for fault in self.faults:
            if (
                isinstance(fault, SummaryCorruption)
                and fault.node == node
                and fault.active_at(epoch)
            ):
                return fault
        return None

    def crashes(self) -> Tuple[NodeCrash, ...]:
        """The plan's crash specs, in plan order (fig16's recovery axis)."""
        return tuple(f for f in self.faults if isinstance(f, NodeCrash))

    def last_epoch(self) -> int:
        """The last epoch any fault is active at (-1 for an empty plan)."""
        if not self.faults:
            return -1
        return max(f.end_epoch for f in self.faults) - 1

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of the whole plan."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusterFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        faults = payload.get("faults")
        if not isinstance(faults, (list, tuple)):
            raise FaultError("a cluster fault plan needs a 'faults' list")
        return cls(
            faults=tuple(cluster_fault_from_dict(entry) for entry in faults)
        )

    def to_json(self, indent: int = 2) -> str:
        """The plan serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterFaultPlan":
        """Parse a plan from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"invalid cluster fault plan JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str) -> str:
        """Write the plan to ``path`` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ClusterFaultPlan":
        """Read a plan previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _spread(nodes: int, count: int) -> List[int]:
    """``count`` distinct node indices spread across ``nodes`` nodes."""
    count = min(count, nodes)
    return sorted({(i * nodes) // count for i in range(count)})


def _preset_crash(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """One mid-cluster crash early in the run, two epochs long."""
    return (NodeCrash(node=nodes // 3, epoch=1, duration_epochs=2),)


def _preset_rolling(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """Staggered crashes marching across the cluster."""
    targets = _spread(nodes, 3)
    return tuple(
        NodeCrash(node=node, epoch=1 + 2 * slot, duration_epochs=2)
        for slot, node in enumerate(targets)
    )


def _preset_stragglers(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """One deadline-missing straggler plus one absorbed slow node."""
    slow, late = _spread(nodes, 2) if nodes > 1 else [0, 0]
    return (
        NodeStraggle(node=late, epoch=1, duration_epochs=2, factor=6.0),
        NodeStraggle(node=slow, epoch=2, duration_epochs=2, factor=1.5),
    )


def _preset_telemetry(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """Summary loss and both corruption modes on spread-out nodes."""
    targets = _spread(nodes, 3)
    lost = targets[0]
    corrupt = targets[1 % len(targets)]
    negated = targets[2 % len(targets)]
    return (
        SummaryLoss(node=lost, epoch=1, duration_epochs=2),
        SummaryCorruption(node=corrupt, epoch=1, duration_epochs=1, mode="nan"),
        SummaryCorruption(
            node=negated, epoch=2, duration_epochs=1, mode="negative"
        ),
    )


def _preset_flap(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """One node flapping down/up from epoch 1 onward."""
    return (
        NodeFlap(
            node=(2 * nodes) // 3,
            epoch=1,
            duration_epochs=4,
            down_epochs=1,
            up_epochs=1,
        ),
    )


def _preset_chaos(nodes: int) -> Tuple[NodeFaultSpec, ...]:
    """Every failure mode at once, on distinct nodes where possible."""
    return (
        _preset_crash(nodes)
        + _preset_stragglers(nodes)
        + _preset_telemetry(nodes)
        + _preset_flap(nodes)
    )


#: Named preset builders, each taking the cluster's node count. The
#: schedules depend only on the node count — never on the epoch target —
#: so a plan built for a 2-epoch checkpointed prefix and the 8-epoch
#: resumed run are the same plan (the resume byte-identity contract).
CLUSTER_FAULT_PRESETS = {
    "crash": _preset_crash,
    "rolling": _preset_rolling,
    "stragglers": _preset_stragglers,
    "telemetry": _preset_telemetry,
    "flap": _preset_flap,
    "chaos": _preset_chaos,
}


def cluster_fault_preset(name: str, nodes: int) -> ClusterFaultPlan:
    """Build a named preset :class:`ClusterFaultPlan` for ``nodes`` nodes."""
    if name not in CLUSTER_FAULT_PRESETS:
        raise FaultError(
            f"unknown cluster fault preset {name!r}; "
            f"choose from {sorted(CLUSTER_FAULT_PRESETS)}"
        )
    if nodes < 1:
        raise FaultError(f"a cluster needs at least one node: {nodes}")
    return ClusterFaultPlan(faults=CLUSTER_FAULT_PRESETS[name](nodes))
