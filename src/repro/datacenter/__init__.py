"""Multi-node extension: placement and datacenter-level entropy.

The paper quantifies interference *within* a datacenter but evaluates on a
single node; this package scales the machinery out:

* :mod:`repro.datacenter.placement` — strategies assigning applications to
  nodes (round-robin, reservation-aware bin packing, and entropy-probed
  greedy placement that uses ``E_S`` itself as the placement signal);
* :mod:`repro.datacenter.cluster` — :class:`Datacenter`: run every node's
  collocation under a scheduling strategy and aggregate the observations
  into datacenter-level ``E_LC``/``E_BE``/``E_S``.
"""

from repro.datacenter.cluster import Datacenter, DatacenterResult
from repro.datacenter.placement import (
    BinPackingPlacement,
    EntropyAwarePlacement,
    Placement,
    RoundRobinPlacement,
)

__all__ = [
    "BinPackingPlacement",
    "Datacenter",
    "DatacenterResult",
    "EntropyAwarePlacement",
    "Placement",
    "RoundRobinPlacement",
]
