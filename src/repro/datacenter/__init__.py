"""Multi-node extension: placement and datacenter-level entropy.

The paper quantifies interference *within* a datacenter but evaluates on a
single node; this package scales the machinery out:

* :mod:`repro.datacenter.placement` — strategies assigning applications to
  nodes (round-robin, reservation-aware bin packing with horizon-aware
  peak-load pressure, and entropy-probed greedy placement that uses
  ``E_S`` itself as the placement signal);
* :mod:`repro.datacenter.shard` — sharded node execution over the warm
  worker pool: :class:`NodeRun` items in, compact exact
  :class:`NodeEpochSummary` records out, byte-identical at any ``--jobs``;
* :mod:`repro.datacenter.migration` — interference-aware rebalancing
  between global epochs (:class:`EntropyGuidedMigration`: per-node
  ``E_S`` scores in, budgeted hysteretic BE moves out);
* :mod:`repro.datacenter.cluster` — :class:`Datacenter`: run every node's
  collocation under a scheduling strategy (one shot, or as a global epoch
  loop with admission and migration → :class:`DatacenterTimeline`) and
  aggregate the observations into datacenter-level
  ``E_LC``/``E_BE``/``E_S``.
"""

from repro.datacenter.cluster import (
    Datacenter,
    DatacenterResult,
    DatacenterTimeline,
    GlobalEpoch,
)
from repro.datacenter.migration import (
    EntropyGuidedMigration,
    MigrationPolicy,
    Move,
    StaticPolicy,
    migration_policy,
)
from repro.datacenter.placement import (
    Assignment,
    BinPackingPlacement,
    EntropyAwarePlacement,
    Placement,
    RoundRobinPlacement,
    node_pressure,
    peak_load,
)
from repro.datacenter.shard import (
    NodeEpochSummary,
    NodeOutcome,
    NodeRun,
    run_shards,
    summarize_node,
)

__all__ = [
    "Assignment",
    "BinPackingPlacement",
    "Datacenter",
    "DatacenterResult",
    "DatacenterTimeline",
    "EntropyAwarePlacement",
    "EntropyGuidedMigration",
    "GlobalEpoch",
    "MigrationPolicy",
    "Move",
    "NodeEpochSummary",
    "NodeOutcome",
    "NodeRun",
    "Placement",
    "RoundRobinPlacement",
    "StaticPolicy",
    "migration_policy",
    "node_pressure",
    "peak_load",
    "run_shards",
    "summarize_node",
]
