"""Multi-node extension: placement and datacenter-level entropy.

The paper quantifies interference *within* a datacenter but evaluates on a
single node; this package scales the machinery out:

* :mod:`repro.datacenter.placement` — strategies assigning applications to
  nodes (round-robin, reservation-aware bin packing with horizon-aware
  peak-load pressure, and entropy-probed greedy placement that uses
  ``E_S`` itself as the placement signal);
* :mod:`repro.datacenter.shard` — sharded node execution over the warm
  worker pool: :class:`NodeRun` items in, compact exact
  :class:`NodeEpochSummary` records out, byte-identical at any ``--jobs``;
* :mod:`repro.datacenter.migration` — interference-aware rebalancing
  between global epochs (:class:`EntropyGuidedMigration`: per-node
  ``E_S`` scores in, budgeted hysteretic BE moves out);
* :mod:`repro.datacenter.cluster` — :class:`Datacenter`: run every node's
  collocation under a scheduling strategy (one shot, or as a global epoch
  loop with admission and migration → :class:`DatacenterTimeline`) and
  aggregate the observations into datacenter-level
  ``E_LC``/``E_BE``/``E_S``;
* :mod:`repro.datacenter.chaos` — deterministic cluster-level fault
  plans (:class:`ClusterFaultPlan`: node crash, straggle, flap, summary
  loss/corruption on half-open epoch windows, JSON round-trip);
* :mod:`repro.datacenter.recovery` — the degraded-mode machinery:
  :class:`Quarantine` (with probation, strike backoff and stale-score
  holding), failover migration of a dead node's tenants, and
  :class:`DatacenterCheckpoint` for byte-identical checkpoint/resume.
"""

from repro.datacenter.chaos import (
    CLUSTER_FAULT_PRESETS,
    ClusterFaultPlan,
    NodeCrash,
    NodeFaultSpec,
    NodeFlap,
    NodeStraggle,
    SummaryCorruption,
    SummaryLoss,
    cluster_fault_from_dict,
    cluster_fault_preset,
)
from repro.datacenter.cluster import (
    Datacenter,
    DatacenterResult,
    DatacenterTimeline,
    GlobalEpoch,
)
from repro.datacenter.migration import (
    EntropyGuidedMigration,
    MigrationPolicy,
    Move,
    StaticPolicy,
    migration_policy,
)
from repro.datacenter.placement import (
    Assignment,
    BinPackingPlacement,
    EntropyAwarePlacement,
    Placement,
    RoundRobinPlacement,
    node_pressure,
    peak_load,
)
from repro.datacenter.recovery import (
    DatacenterCheckpoint,
    Quarantine,
    failover_moves,
    summary_is_sane,
)
from repro.datacenter.shard import (
    NodeEpochSummary,
    NodeOutcome,
    NodeRun,
    ShardReport,
    run_shards,
    summarize_node,
)

__all__ = [
    "Assignment",
    "BinPackingPlacement",
    "CLUSTER_FAULT_PRESETS",
    "ClusterFaultPlan",
    "Datacenter",
    "DatacenterCheckpoint",
    "DatacenterResult",
    "DatacenterTimeline",
    "EntropyAwarePlacement",
    "EntropyGuidedMigration",
    "GlobalEpoch",
    "MigrationPolicy",
    "Move",
    "NodeCrash",
    "NodeEpochSummary",
    "NodeFaultSpec",
    "NodeFlap",
    "NodeOutcome",
    "NodeRun",
    "NodeStraggle",
    "Placement",
    "Quarantine",
    "RoundRobinPlacement",
    "ShardReport",
    "StaticPolicy",
    "SummaryCorruption",
    "SummaryLoss",
    "cluster_fault_from_dict",
    "cluster_fault_preset",
    "failover_moves",
    "migration_policy",
    "node_pressure",
    "peak_load",
    "run_shards",
    "summarize_node",
    "summary_is_sane",
]
