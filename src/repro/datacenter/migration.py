"""Interference-aware migration: rebalance nodes between global epochs.

The paper scores a *node's* health with one number — ``E_S``. This module
applies that score one level up, the way the Alibaba interference-scoring
mechanism and C-Koordinator drive cluster actions from a per-host score:
after every global epoch the coordinator holds a fresh per-node
interference score (each node's measured mean ``E_S``), and a
:class:`MigrationPolicy` turns the score vector into a bounded, hysteretic
set of :class:`Move` proposals.

:class:`EntropyGuidedMigration` is deliberately ARQ-shaped (Algorithm 1
at datacenter scale):

* **move budget** — at most ``budget`` migrations per global epoch, as
  ARQ moves at most one resource unit per adjustment interval;
* **hysteresis** — a donor/recipient score gap below ``hysteresis`` is
  noise, not signal: no move;
* **cooldown** — a node that just participated in a move sits out
  ``cooldown_epochs`` epochs, mirroring ARQ's penalty cooldown, so the
  policy cannot thrash an application back and forth.

Only best-effort members migrate: they are the interference *sources*
(and, in a real datacenter, the cheap-to-move ones); latency-critical
applications keep their placement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.datacenter.placement import Assignment, _is_lc, _member_pressure
from repro.errors import ConfigurationError
from repro.server.spec import NodeSpec
from repro.workloads.loadgen import TimeShiftedLoad


def _pressure_at(
    members: Sequence[object],
    spec: NodeSpec,
    now_s: float,
    horizon_s: float,
) -> float:
    """Node packing pressure over the window ``[now_s, now_s + horizon_s]``.

    Placement scores pressure at *peak-over-horizon from t=0* — right for
    one-shot packing, but blind for migration: every diurnal trace has
    the same peak, so at peak-pressure every node of a staggered
    population looks equally full. Migration instead needs to know who
    has headroom *during the next epoch*, which is exactly this window.
    """
    total = 0.0
    for member in members:
        if _is_lc(member):
            member = replace(
                member, load=TimeShiftedLoad(trace=member.load, offset_s=now_s)
            )
        total += _member_pressure(member, spec, horizon_s)
    return total


@dataclass(frozen=True)
class Move:
    """One proposed migration: move ``member`` from ``source`` to ``target``.

    ``score_gap`` records the donor-minus-recipient interference gap the
    move was justified by (provenance for logs and experiments).
    """

    member: str
    source: int
    target: int
    score_gap: float

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict."""
        return {
            "member": self.member,
            "source": self.source,
            "target": self.target,
            "score_gap": self.score_gap,
        }

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.member}: node {self.source} -> {self.target} "
            f"(gap {self.score_gap:.3f})"
        )


class MigrationPolicy(abc.ABC):
    """A policy proposing migrations from per-node interference scores."""

    name: str = "migration"

    @abc.abstractmethod
    def propose(
        self,
        scores: Mapping[int, float],
        assignment: Assignment,
        specs: Sequence[NodeSpec],
        *,
        now_s: float = 0.0,
        horizon_s: float = 0.0,
    ) -> List[Move]:
        """Propose moves given this epoch's node scores.

        ``scores`` maps node index to measured mean ``E_S`` (nodes with
        no measured epochs are absent). ``now_s``/``horizon_s`` describe
        the load-trace window the *next* epoch will run over — capacity
        checks should look there, not at ``t=0``. Implementations must
        be deterministic: same inputs → same moves.
        """

    def reset(self) -> None:
        """Clear any internal state (cooldowns) before a fresh timeline."""

    def state_dict(self) -> Dict[str, object]:
        """The policy's mutable state as a JSON-safe dict.

        Stateless policies return ``{}``. Stateful ones (cooldowns)
        override so the datacenter checkpoint can capture and restore
        them — resumed timelines must propose the same moves the
        uninterrupted run would have.
        """
        return {}

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore state previously captured with :meth:`state_dict`."""


class StaticPolicy(MigrationPolicy):
    """The do-nothing baseline: placements never change."""

    name = "static"

    def propose(
        self,
        scores: Mapping[int, float],
        assignment: Assignment,
        specs: Sequence[NodeSpec],
        *,
        now_s: float = 0.0,
        horizon_s: float = 0.0,
    ) -> List[Move]:
        """Never proposes a move."""
        return []


@dataclass
class EntropyGuidedMigration(MigrationPolicy):
    """Move BE hogs from high-``E_S`` nodes toward upcoming headroom.

    Per epoch, up to ``budget`` moves: pick the hottest eligible donor
    (highest score, hosting at least one BE member, not cooling down)
    and the recipient with the most *headroom over the next epoch's load
    window* whose score sits at least ``hysteresis`` below the donor's,
    then move the donor's highest-pressure BE member across — provided
    it actually fits (reservations plus the hog within one node's worth
    of resources). Donor ranking is pure ``E_S``; recipient ranking is
    upcoming-window pressure, because the score cannot tell a diurnal
    trough (real headroom) from a well-protected peak. Both endpoints
    then cool down for ``cooldown_epochs`` epochs. All ties break on the
    lower node index and the lexicographically-first member name, so
    proposals are fully deterministic.
    """

    budget: int = 1
    hysteresis: float = 0.02
    cooldown_epochs: int = 1
    name: str = field(default="entropy-guided")
    _cooldowns: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigurationError(f"migration budget must be >= 1: {self.budget}")
        if self.hysteresis < 0:
            raise ConfigurationError(
                f"hysteresis cannot be negative: {self.hysteresis}"
            )
        if self.cooldown_epochs < 0:
            raise ConfigurationError(
                f"cooldown cannot be negative: {self.cooldown_epochs}"
            )

    def reset(self) -> None:
        """Forget every node's cooldown."""
        self._cooldowns.clear()

    def state_dict(self) -> Dict[str, object]:
        """The cooldown table as a JSON-safe dict (checkpoint support)."""
        return {
            "cooldowns": {
                str(node): left for node, left in sorted(self._cooldowns.items())
            }
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Restore cooldowns captured with :meth:`state_dict`."""
        self._cooldowns = {
            int(node): left
            for node, left in state.get("cooldowns", {}).items()
        }

    def propose(
        self,
        scores: Mapping[int, float],
        assignment: Assignment,
        specs: Sequence[NodeSpec],
        *,
        now_s: float = 0.0,
        horizon_s: float = 0.0,
    ) -> List[Move]:
        """Propose up to ``budget`` hysteretic, cooldown-gated moves."""
        buckets = [list(bucket) for bucket in assignment.per_node]
        moves: List[Move] = []
        frozen = set(self._cooldowns)
        # Upcoming-window pressure per node, computed once and patched
        # after each move (only the two endpoints change) — the budget
        # loop stays O(nodes) instead of O(budget * nodes * members).
        pressures = {
            node: _pressure_at(buckets[node], specs[node], now_s, horizon_s)
            for node in scores
            if node < len(buckets)
        }
        for _ in range(self.budget):
            move = self._best_move(
                scores, buckets, specs, frozen, pressures, horizon_s
            )
            if move is None:
                break
            member = next(
                m for m in buckets[move.source] if m.name == move.member
            )
            buckets[move.source] = [
                m for m in buckets[move.source] if m.name != move.member
            ]
            buckets[move.target].append(member)
            for node in (move.source, move.target):
                pressures[node] = _pressure_at(
                    buckets[node], specs[node], now_s, horizon_s
                )
            frozen.update((move.source, move.target))
            moves.append(move)
        # Tick surviving cooldowns *after* this round used them, then
        # freeze this round's endpoints: a node touched by a move sits
        # out exactly the next ``cooldown_epochs`` proposal rounds.
        self._cooldowns = {
            node: left - 1 for node, left in self._cooldowns.items() if left > 1
        }
        if self.cooldown_epochs:
            for move in moves:
                self._cooldowns[move.source] = self.cooldown_epochs
                self._cooldowns[move.target] = self.cooldown_epochs
        return moves

    def _best_move(
        self,
        scores: Mapping[int, float],
        buckets: List[List[object]],
        specs: Sequence[NodeSpec],
        frozen: set,
        pressures: Mapping[int, float],
        horizon_s: float,
    ) -> Optional[Move]:
        """The single best eligible (donor, recipient, member) triple."""
        donors = sorted(
            (
                node
                for node, score in scores.items()
                if node not in frozen
                and node < len(buckets)
                and any(not _is_lc(m) for m in buckets[node])
            ),
            key=lambda node: (-scores[node], node),
        )
        # Recipients rank by *headroom over the next epoch's window*, not
        # by score: every hog-free node meeting its QoS shows E_S ≈ 0,
        # so the score cannot tell a diurnal trough (real headroom) from
        # a well-protected peak. E_S still gates eligibility through the
        # hysteresis test against the donor below.
        recipients = sorted(
            (
                node
                for node, score in scores.items()
                if node not in frozen and node < len(buckets)
            ),
            key=lambda node: (pressures[node], scores[node], node),
        )
        for donor in donors:
            candidates = [
                recipient
                for recipient in recipients
                if recipient != donor
                and scores[donor] - scores[recipient] > self.hysteresis
            ]
            if not candidates:
                continue
            hogs = sorted(
                (m for m in buckets[donor] if not _is_lc(m)),
                key=lambda m: (-_member_pressure(m, specs[donor]), m.name),
            )
            for recipient in candidates:
                for hog in hogs:
                    # Capacity guard over the *next epoch's* load window
                    # (E_S stays the ranking signal): the recipient with
                    # the hog added must genuinely fit inside the node —
                    # reservations plus the hog's threads within one
                    # node's worth of resources. A low-E_S node at its
                    # diurnal peak has no headroom (its LC apps are
                    # merely well-protected); parking the hog there, or
                    # making any merely-lateral move, just starves the
                    # hog and trades E_LC noise for real E_BE loss.
                    # Hogs are BE members — their pressure is load-trace
                    # independent, so the cached node pressure plus the
                    # hog's own weight is exact.
                    after = pressures[recipient] + _member_pressure(
                        hog, specs[recipient], horizon_s
                    )
                    if after <= 1.0 + 1e-9:
                        return Move(
                            member=hog.name,
                            source=donor,
                            target=recipient,
                            score_gap=scores[donor] - scores[recipient],
                        )
        return None


#: Named migration policies (the CLI's ``--migration`` choices).
MIGRATION_POLICIES = ("none", "entropy")


def migration_policy(name: str, **kwargs: object) -> Optional[MigrationPolicy]:
    """Build a named migration policy (``None`` for ``"none"``)."""
    if name == "none":
        return None
    if name == "entropy":
        return EntropyGuidedMigration(**kwargs)  # type: ignore[arg-type]
    raise ConfigurationError(
        f"unknown migration policy {name!r}; choose from {MIGRATION_POLICIES}"
    )
