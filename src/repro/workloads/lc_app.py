"""Latency-critical application profiles, calibrated to Table IV.

An LC application is a queueing system (:class:`repro.perfmodel.queueing.
QueueModel`) with two separate scales:

* a **latency scale** — the mean per-request service time (gamma
  distributed with coefficient of variation ``service_cv``), which sets
  the ideal tail latency ``TL_i0``;
* a **throughput scale** — the application's sustainable request rate
  ``wall_rps`` with all its threads running, which sets where the
  tail-latency knee sits. Granting ``c < threads`` cores scales capacity
  to ``wall · c/threads``; interference (cache squeeze, bandwidth
  saturation) stretches service time and shrinks capacity by the same
  factor.

Calibration (:func:`calibrate_lc_profile`) reproduces two anchors from the
paper for each application:

* the ideal tail latency ``TL_i0`` at 20% load with ample resources
  (Table II's constants), and
* the tail-latency threshold ``M_i`` being reached exactly at max load
  (Table IV's definition: the threshold *is* the latency at the knee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, ModelError
from repro.perfmodel.queueing import QueueModel, service_quantile_ms
from repro.perfmodel.slowdown import memory_time_stretch
from repro.server.llc import MissRatioCurve
from repro.types import AppKind, QoSTarget
from repro.workloads.base import ApplicationProfile

#: Memoised reserve_cores results — (name, wall, load, safety) → cores.
_RESERVE_CACHE: dict = {}


@dataclass(frozen=True)
class LCProfile(ApplicationProfile):
    """A latency-critical application.

    Attributes (beyond :class:`ApplicationProfile`)
    -----------------------------------------------
    max_load_qps:
        Maximum sustainable load (Table IV "Max Load").
    threshold_ms:
        Tail-latency threshold ``M_i`` (Table IV).
    service_time_ms:
        Calibrated mean per-request service time at the reference
        configuration.
    wall_rps:
        Calibrated sustainable throughput with all threads at the
        reference configuration.
    service_cv:
        Coefficient of variation of the service time.
    base_latency_ms:
        Deterministic latency floor added on top of queueing delay
        (network/framework overhead); usually 0 after calibration.
    percentile:
        Latency percentile of the QoS target (95 in the paper).
    """

    max_load_qps: float = 0.0
    threshold_ms: float = 0.0
    service_time_ms: float = 0.0
    wall_rps: float = 0.0
    service_cv: float = 0.25
    base_latency_ms: float = 0.0
    percentile: float = 95.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.kind.is_lc:
            raise ConfigurationError(f"{self.name}: LCProfile requires an LC kind")
        if self.max_load_qps <= 0:
            raise ConfigurationError(f"{self.name}: max_load_qps must be positive")
        if self.threshold_ms <= 0:
            raise ConfigurationError(f"{self.name}: threshold_ms must be positive")
        if self.service_time_ms <= 0:
            raise ConfigurationError(f"{self.name}: service_time_ms must be positive")
        if self.wall_rps <= self.max_load_qps:
            raise ConfigurationError(
                f"{self.name}: wall_rps must exceed max_load_qps for the max "
                "load to be sustainable"
            )
        if self.service_cv < 0:
            raise ConfigurationError(f"{self.name}: service_cv cannot be negative")
        if self.base_latency_ms < 0:
            raise ConfigurationError(
                f"{self.name}: base_latency_ms cannot be negative"
            )

    @property
    def qos(self) -> QoSTarget:
        return QoSTarget(tail_latency_ms=self.threshold_ms, percentile=self.percentile)

    @property
    def per_core_rate_rps(self) -> float:
        """Throughput contributed by one core at the reference config."""
        return self.wall_rps / float(self.threads)

    def arrival_rps(self, load_fraction: float) -> float:
        """Absolute arrival rate at a fractional load level."""
        if load_fraction < 0:
            raise ModelError(f"{self.name}: load fraction cannot be negative")
        return load_fraction * self.max_load_qps

    def stretch(
        self, effective_ways: float, bandwidth_stretch: float = 1.0
    ) -> float:
        """Execution-time multiplier from cache/bandwidth interference."""
        return memory_time_stretch(
            self.curve,
            effective_ways,
            self.reference_ways,
            self.memory_fraction,
            bandwidth_stretch,
        )

    def capacity_rps(
        self,
        cores: float,
        effective_ways: float,
        bandwidth_stretch: float = 1.0,
        transient_penalty: float = 1.0,
        parallelism: Optional[int] = None,
    ) -> float:
        """Sustainable throughput at the current allocation.

        ``parallelism`` overrides the thread count (used by the Fig. 7
        load-curve experiment, which re-instantiates applications with as
        many threads as cores).
        """
        if cores < 0:
            raise ModelError(f"{self.name}: cores cannot be negative")
        if transient_penalty < 1.0:
            raise ModelError(f"{self.name}: transient penalty must be ≥ 1")
        threads = float(self.threads if parallelism is None else parallelism)
        stretch = self.stretch(effective_ways, bandwidth_stretch) * transient_penalty
        core_fraction = min(cores, threads) / float(self.threads)
        return self.wall_rps * core_fraction / stretch

    def queue_model(
        self,
        load_fraction: float,
        cores: float,
        effective_ways: float,
        bandwidth_stretch: float = 1.0,
        transient_penalty: float = 1.0,
        parallelism: Optional[int] = None,
    ) -> QueueModel:
        """The stationary queue at the given load and allocation."""
        threads = float(self.threads if parallelism is None else parallelism)
        stretch = self.stretch(effective_ways, bandwidth_stretch) * transient_penalty
        return QueueModel(
            arrival_rps=self.arrival_rps(load_fraction),
            capacity_rps=self.capacity_rps(
                cores,
                effective_ways,
                bandwidth_stretch,
                transient_penalty,
                parallelism,
            ),
            servers=min(cores, threads),
            service_time_ms=self.service_time_ms * stretch,
            service_cv=self.service_cv,
        )

    def tail_latency_ms(
        self,
        load_fraction: float,
        cores: float,
        effective_ways: float,
        bandwidth_stretch: float = 1.0,
        transient_penalty: float = 1.0,
        parallelism: Optional[int] = None,
    ) -> float:
        """Stationary tail latency at the given allocation (no backlog)."""
        model = self.queue_model(
            load_fraction,
            cores,
            effective_ways,
            bandwidth_stretch,
            transient_penalty,
            parallelism,
        )
        return self.base_latency_ms + model.percentile_ms(self.percentile)

    def ideal_latency_ms(self, load_fraction: float) -> float:
        """``TL_i0``: tail latency with ample resources (solo, full cache).

        Calibration pins the knee so that ``TL_i0`` meets ``M_i`` exactly
        at 100% of max load; float round-off can land one ulp above, so
        the result is clamped to the threshold — the entropy layer treats
        ``TL_i0 > M_i`` as an unsatisfiable QoS target and rejects it.
        """
        latency = self.tail_latency_ms(
            load_fraction,
            cores=float(self.threads),
            effective_ways=self.reference_ways,
        )
        if load_fraction <= 1.0:
            return min(latency, self.threshold_ms)
        return latency

    def demand_cores(self, load_fraction: float, headroom: float = 0.1) -> float:
        """CPU time the application actually *consumes* at this load.

        Used for CFS water-filling: the OS grants what threads consume,
        and the calibration ties the max load to the full thread count,
        so an application at ``x`` of its max load burns ``x`` of its
        threads' worth of cores (plus wake-up/preemption headroom). For
        the capacity a QoS-aware scheduler should *reserve*, see
        :meth:`reserve_cores` — the two differ markedly for applications
        with tight latency budgets.
        """
        if headroom < 0:
            raise ModelError(f"{self.name}: headroom cannot be negative")
        if load_fraction < 0:
            raise ModelError(f"{self.name}: load fraction cannot be negative")
        needed = load_fraction * float(self.threads)
        return min(float(self.threads), max(0.05, needed * (1.0 + headroom)))

    def reserve_cores(self, load_fraction: float, safety: float = 0.8) -> float:
        """Smallest core count keeping the tail below ``safety × M_i``.

        Solved by bisection at the reference cache/bandwidth state and
        memoised per (load, safety). Applications whose thresholds are
        tight relative to their request rate (e.g. Silo: millisecond
        budget, tens of requests per second) legitimately need far more
        reserved capacity than their raw utilisation suggests — keeping
        the waiting probability under the QoS percentile's survival level
        requires low utilisation.
        """
        if not 0 < safety <= 1:
            raise ModelError(f"{self.name}: safety must be in (0, 1]")
        if load_fraction < 0:
            raise ModelError(f"{self.name}: load fraction cannot be negative")
        key = (self.name, self.wall_rps, round(load_fraction, 6), safety)
        cached = _RESERVE_CACHE.get(key)
        if cached is not None:
            return cached

        target_ms = safety * self.threshold_ms
        threads = float(self.threads)

        def tail(cores: float) -> float:
            return self.tail_latency_ms(load_fraction, cores, self.reference_ways)

        if tail(threads) > target_ms:
            reserve = threads  # even all cores cannot hit the safety target
        else:
            low, high = 0.02, threads
            for _ in range(40):
                mid = 0.5 * (low + high)
                if tail(mid) > target_ms:
                    low = mid
                else:
                    high = mid
            reserve = high
        reserve = min(threads, max(0.05, reserve))
        _RESERVE_CACHE[key] = reserve
        return reserve


def calibrate_lc_profile(
    name: str,
    threshold_ms: float,
    max_load_qps: float,
    ideal_at_20pct_ms: float,
    curve: MissRatioCurve,
    memory_fraction: float,
    membw_ref_gbps: float,
    threads: int = 4,
    reference_ways: float = 20.0,
    percentile: float = 95.0,
    service_cv: float = 0.25,
) -> LCProfile:
    """Solve for ``(service_time, wall)`` matching the paper's anchors.

    A short fixed-point iteration: the service time is set so the 20%-load
    tail latency equals ``TL_i0`` (given the current estimate of low-load
    waiting), and the wall is bisected so the tail latency at max load
    equals ``M_i``.
    """
    if ideal_at_20pct_ms >= threshold_ms:
        raise ConfigurationError(
            f"{name}: ideal latency {ideal_at_20pct_ms} must be below the "
            f"threshold {threshold_ms}"
        )

    quantile_factor = service_quantile_ms(1.0, percentile, service_cv)
    low_load_rps = 0.2 * max_load_qps

    def latency_at(arrival_rps: float, service_ms: float, wall_rps: float) -> float:
        return QueueModel(
            arrival_rps=arrival_rps,
            capacity_rps=wall_rps,
            servers=float(threads),
            service_time_ms=service_ms,
            service_cv=service_cv,
        ).percentile_ms(percentile)

    service_ms = ideal_at_20pct_ms / quantile_factor
    wall = max_load_qps * 2.0

    for _ in range(10):
        # Latency anchor: p-th percentile at 20% load equals TL_i0.
        # Monotone increasing in the service time → bisection.
        svc_low, svc_high = 1e-9, ideal_at_20pct_ms
        for _ in range(80):
            svc_mid = 0.5 * (svc_low + svc_high)
            if latency_at(low_load_rps, svc_mid, wall) < ideal_at_20pct_ms:
                svc_low = svc_mid
            else:
                svc_high = svc_mid
        service_ms = 0.5 * (svc_low + svc_high)

        # Knee anchor: percentile at max load equals M_i.
        # Monotone decreasing in the wall → bisection.
        wall_low = max_load_qps * 1.0001
        wall_high = max_load_qps * 1000.0
        if latency_at(max_load_qps, service_ms, wall_high) > threshold_ms:
            raise ConfigurationError(
                f"{name}: anchors unsatisfiable — even an enormous wall "
                "leaves the knee above the threshold"
            )
        for _ in range(100):
            wall_mid = 0.5 * (wall_low + wall_high)
            if latency_at(max_load_qps, service_ms, wall_mid) > threshold_ms:
                wall_low = wall_mid
            else:
                wall_high = wall_mid
        wall = 0.5 * (wall_low + wall_high)

    return LCProfile(
        name=name,
        kind=AppKind.LATENCY_CRITICAL,
        threads=threads,
        curve=curve,
        reference_ways=reference_ways,
        memory_fraction=memory_fraction,
        membw_ref_gbps=membw_ref_gbps,
        max_load_qps=max_load_qps,
        threshold_ms=threshold_ms,
        service_time_ms=service_ms,
        wall_rps=wall,
        service_cv=service_cv,
        base_latency_ms=0.0,
        percentile=percentile,
    )
