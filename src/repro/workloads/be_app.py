"""Best-effort application profiles.

A BE application's user experience is its instruction throughput, reported
as IPC (§I). The model: the application runs ``threads`` worker threads; its
aggregate instruction rate scales with the share of those threads' worth of
cores it actually receives, and degrades with cache pressure and memory
bandwidth contention exactly like LC service rates do.

``IPC`` here is the aggregate instructions-per-cycle across the
application's threads divided by the thread count — i.e. the per-thread
average that the paper plots (Fluidanimate around 1.1–2.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ModelError
from repro.perfmodel.slowdown import memory_time_stretch
from repro.workloads.base import ApplicationProfile


@dataclass(frozen=True)
class BEProfile(ApplicationProfile):
    """A best-effort application.

    Attributes (beyond :class:`ApplicationProfile`)
    -----------------------------------------------
    base_ipc:
        Per-thread IPC at the reference configuration (solo, full LLC,
        uncontended bandwidth, one core per thread).
    """

    base_ipc: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind.is_lc:
            raise ConfigurationError(f"{self.name}: BEProfile requires a BE kind")
        if self.base_ipc <= 0:
            raise ConfigurationError(f"{self.name}: base_ipc must be positive")

    @property
    def ipc_solo(self) -> float:
        """IPC when running alone with ample resources (``IPC_solo``)."""
        return self.base_ipc

    def ipc(
        self,
        cores: float,
        effective_ways: float,
        bandwidth_stretch: float = 1.0,
        transient_penalty: float = 1.0,
    ) -> float:
        """``IPC_real`` at the current allocation.

        ``cores`` may be fractional (time-sliced shared pools); receiving
        fewer cores than threads scales throughput down proportionally.
        The result is floored at a tiny positive value so the entropy
        formulas never divide by zero when an application is fully starved.
        """
        if cores < 0:
            raise ModelError(f"{self.name}: cores cannot be negative: {cores}")
        if transient_penalty < 1.0:
            raise ModelError(f"{self.name}: transient penalty must be ≥ 1")
        core_fraction = min(1.0, cores / float(self.threads))
        stretch = memory_time_stretch(
            self.curve,
            effective_ways,
            self.reference_ways,
            self.memory_fraction,
            bandwidth_stretch,
        )
        value = self.base_ipc * core_fraction / (stretch * transient_penalty)
        return max(1e-6, value)

    def demand_cores(self) -> float:
        """BE applications are always runnable on all their threads."""
        return float(self.threads)

    def activity(self, cores: float) -> float:
        """Fraction of full-throttle work happening at this core share."""
        if cores < 0:
            raise ModelError(f"{self.name}: cores cannot be negative: {cores}")
        return min(1.0, cores / float(self.threads))
