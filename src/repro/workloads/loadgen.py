"""Load traces: how an LC application's load evolves over a run.

The paper evaluates constant loads (§VI-A) and a fluctuating Xapian load
(§VI-B, Fig. 13: 250 seconds sweeping 10% → 90% and back). A trace maps
simulation time (seconds) to a load fraction in [0, 1].
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


class LoadTrace(abc.ABC):
    """A time-varying load level for one LC application."""

    @abc.abstractmethod
    def fraction(self, time_s: float) -> float:
        """Load fraction in [0, 1] at simulation time ``time_s``."""

    def __call__(self, time_s: float) -> float:
        value = self.fraction(time_s)
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"{type(self).__name__} produced a load outside [0, 1]: {value}"
            )
        return value


@dataclass(frozen=True)
class ConstantLoad(LoadTrace):
    """A fixed load fraction (the §VI-A constant-load experiments)."""

    level: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ConfigurationError(f"load level must be in [0, 1], got {self.level}")

    def fraction(self, time_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class StepLoad(LoadTrace):
    """A single step from ``before`` to ``after`` at ``at_s`` seconds."""

    before: float
    after: float
    at_s: float

    def __post_init__(self) -> None:
        for value in (self.before, self.after):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"load level must be in [0, 1], got {value}")
        if self.at_s < 0:
            raise ConfigurationError("step time cannot be negative")

    def fraction(self, time_s: float) -> float:
        return self.before if time_s < self.at_s else self.after


@dataclass(frozen=True)
class PiecewiseLoad(LoadTrace):
    """Piecewise-constant load: ``segments`` of (start_s, level).

    Segments must start at 0 and be sorted; each level holds until the next
    segment begins.
    """

    segments: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("PiecewiseLoad needs at least one segment")
        if self.segments[0][0] != 0:
            raise ConfigurationError("the first segment must start at t=0")
        previous = -1.0
        for start, level in self.segments:
            if start <= previous:
                raise ConfigurationError("segments must be strictly increasing in time")
            if not 0.0 <= level <= 1.0:
                raise ConfigurationError(f"load level must be in [0, 1], got {level}")
            previous = start

    @classmethod
    def of(cls, *segments: Tuple[float, float]) -> "PiecewiseLoad":
        return cls(segments=tuple(segments))

    def fraction(self, time_s: float) -> float:
        level = self.segments[0][1]
        for start, value in self.segments:
            if time_s >= start:
                level = value
            else:
                break
        return level


@dataclass(frozen=True)
class FluctuatingLoad(LoadTrace):
    """The Fig. 13 pattern: staircase up 10% → 90% and back down.

    The default reproduces the paper's 250-second run: 25-second plateaus
    stepping through 10, 30, 50, 70, 90, 70, 50, 30, 10, 30 percent.
    """

    plateau_s: float = 25.0
    levels: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9, 0.7, 0.5, 0.3, 0.1, 0.3)

    def __post_init__(self) -> None:
        if self.plateau_s <= 0:
            raise ConfigurationError("plateau length must be positive")
        if not self.levels:
            raise ConfigurationError("FluctuatingLoad needs at least one level")
        for level in self.levels:
            if not 0.0 <= level <= 1.0:
                raise ConfigurationError(f"load level must be in [0, 1], got {level}")

    @property
    def duration_s(self) -> float:
        return self.plateau_s * len(self.levels)

    def fraction(self, time_s: float) -> float:
        if time_s < 0:
            return self.levels[0]
        index = int(time_s // self.plateau_s) % len(self.levels)
        return self.levels[index]


@dataclass(frozen=True)
class TimeShiftedLoad(LoadTrace):
    """A view of another trace advanced by ``offset_s`` seconds.

    ``TimeShiftedLoad(trace, offset_s=o)(t) == trace(t + o)``. The
    datacenter's global epoch loop uses this to hand each epoch's node
    runs the *next segment* of one long load trace (epoch ``e`` sees
    ``[e·Δ, (e+1)·Δ)``), and phase-staggered diurnal populations are
    built by shifting one :class:`DiurnalLoad` per group.
    """

    trace: LoadTrace
    offset_s: float = 0.0

    def fraction(self, time_s: float) -> float:
        return self.trace.fraction(time_s + self.offset_s)


@dataclass(frozen=True)
class DiurnalLoad(LoadTrace):
    """Smooth day/night oscillation: high in the "daytime", low at "night".

    ``period_s`` is a full day; the load swings sinusoidally between
    ``low`` and ``high``. Used by the extension examples.
    """

    low: float
    high: float
    period_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ConfigurationError("need 0 <= low <= high <= 1")
        if self.period_s <= 0:
            raise ConfigurationError("period must be positive")

    def fraction(self, time_s: float) -> float:
        phase = math.sin(2.0 * math.pi * time_s / self.period_s)
        return self.low + (self.high - self.low) * 0.5 * (1.0 + phase)
