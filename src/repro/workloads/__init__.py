"""Application models: the paper's LC and BE workloads.

* :mod:`repro.workloads.base` — shared profile fields (threads, miss-ratio
  curve, memory-bandwidth appetite);
* :mod:`repro.workloads.lc_app` — latency-critical applications as
  calibrated queueing systems (Tailbench: Xapian, Moses, Img-dnn, Masstree,
  Sphinx, Silo);
* :mod:`repro.workloads.be_app` — best-effort applications with
  IPC-vs-resources models (PARSEC Fluidanimate/Streamcluster, STREAM);
* :mod:`repro.workloads.catalog` — the concrete paper workloads with
  Table IV parameters;
* :mod:`repro.workloads.loadgen` — load traces (constant, step,
  fluctuating — Fig. 13);
* :mod:`repro.workloads.zipf` — Zipfian popularity sampling (§V's Xapian
  query distribution), used by the request-level simulator.
"""

from repro.workloads.base import ApplicationProfile
from repro.workloads.be_app import BEProfile
from repro.workloads.catalog import (
    BE_APPLICATIONS,
    LC_APPLICATIONS,
    be_profile,
    lc_profile,
)
from repro.workloads.lc_app import LCProfile, calibrate_lc_profile
from repro.workloads.loadgen import (
    ConstantLoad,
    DiurnalLoad,
    FluctuatingLoad,
    LoadTrace,
    PiecewiseLoad,
    StepLoad,
    TimeShiftedLoad,
)

__all__ = [
    "ApplicationProfile",
    "BEProfile",
    "BE_APPLICATIONS",
    "ConstantLoad",
    "DiurnalLoad",
    "FluctuatingLoad",
    "LCProfile",
    "LC_APPLICATIONS",
    "LoadTrace",
    "PiecewiseLoad",
    "StepLoad",
    "TimeShiftedLoad",
    "be_profile",
    "calibrate_lc_profile",
    "lc_profile",
]
