"""Shared application-profile fields.

Every application — latency-critical or best-effort — is described by a
*profile*: an immutable bundle of the parameters the substrate's
performance models need. Profiles carry no runtime state; per-run state
(backlogs, warm-up) lives in :mod:`repro.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.server.llc import MissRatioCurve
from repro.types import AppKind


@dataclass(frozen=True)
class ApplicationProfile:
    """Resource-behaviour description common to LC and BE applications.

    Attributes
    ----------
    name:
        Unique application name (catalog key).
    kind:
        Latency-critical or best-effort.
    threads:
        Worker threads; also the maximum number of cores the application
        can exploit. The paper instantiates most applications with 4
        threads and STREAM with 10 (§V).
    curve:
        LLC miss-ratio curve.
    reference_ways:
        LLC ways at which the application's base performance was
        calibrated (solo on the full machine → the full LLC).
    memory_fraction:
        Fraction of execution time spent waiting on memory at the
        reference configuration.
    membw_ref_gbps:
        Memory bandwidth consumed at the reference configuration with all
        threads fully active.
    """

    name: str
    kind: AppKind
    threads: int
    curve: MissRatioCurve
    reference_ways: float
    memory_fraction: float
    membw_ref_gbps: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application name cannot be empty")
        if self.threads < 1:
            raise ConfigurationError(f"{self.name}: needs at least one thread")
        if self.reference_ways <= 0:
            raise ConfigurationError(f"{self.name}: reference_ways must be positive")
        if not 0.0 <= self.memory_fraction < 1.0:
            raise ConfigurationError(
                f"{self.name}: memory_fraction must be in [0, 1)"
            )
        if self.membw_ref_gbps < 0:
            raise ConfigurationError(
                f"{self.name}: membw_ref_gbps cannot be negative"
            )

    @property
    def is_lc(self) -> bool:
        return self.kind.is_lc

    def membw_demand_gbps(self, activity: float, effective_ways: float) -> float:
        """Memory bandwidth demanded at the current activity and cache size.

        ``activity`` is the fraction of the application's full-throttle work
        actually happening (core share for BE, utilisation for LC). Demand
        scales with the miss ratio relative to the reference configuration
        (a squeezed cache turns hits into memory traffic) and is *concave*
        in activity: memory-bound applications saturate the channels well
        before all their threads run — half of STREAM's threads already
        pull nearly its peak bandwidth.
        """
        if activity < 0:
            raise ConfigurationError(
                f"{self.name}: activity cannot be negative: {activity}"
            )
        reference_miss = self.curve.miss_ratio(self.reference_ways)
        if reference_miss <= 0:
            return 0.0
        miss_scaling = self.curve.miss_ratio(effective_ways) / reference_miss
        effective_activity = min(1.0, 2.0 * min(activity, 1.0))
        # Blend toward linearity for lightly memory-bound applications:
        # their bandwidth follows instruction throughput, not channel
        # saturation.
        concave_share = self.memory_fraction
        scaled = (
            concave_share * effective_activity
            + (1.0 - concave_share) * min(activity, 1.0)
        )
        return self.membw_ref_gbps * scaled * miss_scaling

    def cache_pressure(self, activity: float, effective_ways: float) -> float:
        """Weight used when competing for shared LLC ways.

        Occupancy in a shared LRU cache grows with insertion (miss)
        traffic, but *retention* favours lines that are re-referenced —
        a streaming hog does not displace a hot working set one-for-one.
        The square root of the miss-bandwidth demand captures this
        sub-linear relationship: a 50 GB/s streamer out-pressures a
        5 GB/s search index by ~3×, not 10×.
        """
        return self.membw_demand_gbps(activity, effective_ways) ** 0.5
