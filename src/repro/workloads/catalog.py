"""The paper's concrete workloads (§V, Tables II and IV).

Latency-critical applications come from Tailbench, best-effort ones from
PARSEC and STREAM. QoS thresholds and max loads are Table IV's values; the
ideal tail latencies anchor to Table II (Xapian 2.77 ms, Moses 2.80 ms,
Img-dnn 1.41 ms at 20% load). Cache sensitivity, memory-boundedness and
bandwidth appetite are not published per-application, so they are set to
values characteristic of each application class:

* **Xapian** (search) — index walks: moderately memory-bound, sizeable
  cache benefit.
* **Moses** (statistical MT) — phrase-table lookups dominated by compute:
  mildly memory-bound.
* **Img-dnn** (handwriting DNN) — dense compute, small working set.
* **Masstree** (in-memory KV) — pointer chasing: strongly cache-sensitive.
* **Sphinx** (speech) — long compute-heavy requests, tiny bandwidth.
* **Silo** (in-memory OLTP) — cache-sensitive transactions.
* **Fluidanimate** (PARSEC) — stencil-style compute, moderate bandwidth.
* **Streamcluster** (PARSEC) — clustering over streamed points: bandwidth-
  and cache-hungry.
* **Stream** — 10-thread bandwidth hog; by design it never fits in cache
  and saturates the memory channels (§V instantiates it with 10 threads to
  "generate severe interference").
"""

from __future__ import annotations

from typing import Dict

from repro.errors import UnknownApplicationError
from repro.perfmodel.missratio import curve_from_sensitivity
from repro.server.llc import MissRatioCurve
from repro.types import AppKind
from repro.workloads.be_app import BEProfile
from repro.workloads.lc_app import LCProfile, calibrate_lc_profile

#: Ways of the full LLC on the paper platform — the calibration reference.
_FULL_WAYS = 20.0


def _build_lc_catalog() -> Dict[str, LCProfile]:
    return {
        "xapian": calibrate_lc_profile(
            name="xapian",
            threshold_ms=4.22,
            max_load_qps=3400.0,
            ideal_at_20pct_ms=2.77,
            curve=curve_from_sensitivity(0.08, 0.28, _FULL_WAYS),
            memory_fraction=0.20,
            membw_ref_gbps=6.0,
        ),
        "moses": calibrate_lc_profile(
            name="moses",
            threshold_ms=10.53,
            max_load_qps=1800.0,
            ideal_at_20pct_ms=2.80,
            curve=curve_from_sensitivity(0.05, 0.16, _FULL_WAYS),
            memory_fraction=0.15,
            membw_ref_gbps=4.0,
        ),
        "img-dnn": calibrate_lc_profile(
            name="img-dnn",
            threshold_ms=3.98,
            max_load_qps=5300.0,
            ideal_at_20pct_ms=1.41,
            curve=curve_from_sensitivity(0.10, 0.24, _FULL_WAYS),
            memory_fraction=0.12,
            membw_ref_gbps=5.0,
        ),
        "masstree": calibrate_lc_profile(
            name="masstree",
            threshold_ms=1.05,
            max_load_qps=4420.0,
            ideal_at_20pct_ms=0.55,
            curve=curve_from_sensitivity(0.15, 0.48, _FULL_WAYS),
            memory_fraction=0.30,
            membw_ref_gbps=8.0,
        ),
        "sphinx": calibrate_lc_profile(
            name="sphinx",
            threshold_ms=2682.0,
            max_load_qps=4.8,
            ideal_at_20pct_ms=1510.0,
            curve=curve_from_sensitivity(0.04, 0.10, _FULL_WAYS),
            memory_fraction=0.08,
            membw_ref_gbps=2.0,
        ),
        "silo": calibrate_lc_profile(
            name="silo",
            threshold_ms=1.27,
            max_load_qps=220.0,
            ideal_at_20pct_ms=0.60,
            curve=curve_from_sensitivity(0.12, 0.38, _FULL_WAYS),
            memory_fraction=0.25,
            membw_ref_gbps=3.0,
        ),
    }


def _build_be_catalog() -> Dict[str, BEProfile]:
    return {
        "fluidanimate": BEProfile(
            name="fluidanimate",
            kind=AppKind.BEST_EFFORT,
            threads=4,
            curve=curve_from_sensitivity(0.10, 0.35, _FULL_WAYS),
            reference_ways=_FULL_WAYS,
            memory_fraction=0.25,
            membw_ref_gbps=8.0,
            base_ipc=2.8,
        ),
        "streamcluster": BEProfile(
            name="streamcluster",
            kind=AppKind.BEST_EFFORT,
            threads=4,
            curve=curve_from_sensitivity(0.25, 0.60, _FULL_WAYS),
            reference_ways=_FULL_WAYS,
            memory_fraction=0.45,
            membw_ref_gbps=15.0,
            base_ipc=1.4,
        ),
        "stream": BEProfile(
            name="stream",
            kind=AppKind.BEST_EFFORT,
            threads=10,
            curve=MissRatioCurve.streaming(),
            reference_ways=_FULL_WAYS,
            memory_fraction=0.90,
            membw_ref_gbps=55.0,
            base_ipc=0.6,
        ),
    }


#: All latency-critical application profiles, keyed by name.
LC_APPLICATIONS: Dict[str, LCProfile] = _build_lc_catalog()

#: All best-effort application profiles, keyed by name.
BE_APPLICATIONS: Dict[str, BEProfile] = _build_be_catalog()


def lc_profile(name: str) -> LCProfile:
    """Look up a latency-critical profile by (case-insensitive) name."""
    key = name.lower()
    if key not in LC_APPLICATIONS:
        raise UnknownApplicationError(name, list(LC_APPLICATIONS))
    return LC_APPLICATIONS[key]


def be_profile(name: str) -> BEProfile:
    """Look up a best-effort profile by (case-insensitive) name."""
    key = name.lower()
    if key not in BE_APPLICATIONS:
        raise UnknownApplicationError(name, list(BE_APPLICATIONS))
    return BE_APPLICATIONS[key]
