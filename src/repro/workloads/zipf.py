"""Zipfian popularity sampling.

§V of the paper drives Xapian with query terms "chosen randomly, following
a Zipfian distribution". The request-level simulator uses this sampler to
draw per-request service-time classes: popular (cache-warm) queries are
fast, unpopular ones slow — which is what gives real tail latencies their
heavy upper tail.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Draw ranks 1..n with probability proportional to ``1 / rank^s``."""

    def __init__(self, n_items: int, exponent: float = 1.0) -> None:
        if n_items < 1:
            raise ConfigurationError(f"need at least one item, got {n_items}")
        if exponent < 0:
            raise ConfigurationError(f"exponent cannot be negative: {exponent}")
        self.n_items = n_items
        self.exponent = exponent
        weights = 1.0 / np.arange(1, n_items + 1, dtype=float) ** exponent
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)

    @property
    def probabilities(self) -> Sequence[float]:
        return self._probabilities.tolist()

    def sample(self, rng: np.random.Generator, size: int = 1) -> List[int]:
        """Draw ``size`` ranks (1-based)."""
        if size < 1:
            raise ConfigurationError(f"sample size must be positive, got {size}")
        uniforms = rng.random(size)
        ranks = np.searchsorted(self._cumulative, uniforms) + 1
        return ranks.tolist()

    def head_mass(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` most popular items."""
        if not 1 <= top_k <= self.n_items:
            raise ConfigurationError(
                f"top_k must be in [1, {self.n_items}], got {top_k}"
            )
        return float(self._cumulative[top_k - 1])


def service_time_multipliers(
    n_items: int, slow_tail_factor: float = 4.0
) -> np.ndarray:
    """Per-rank service-time multipliers for Zipf-popular items.

    Rank 1 (most popular) costs 1×; the least popular costs
    ``slow_tail_factor``×, interpolated logarithmically — approximating
    index/cache locality effects in a search engine.
    """
    if n_items < 1:
        raise ConfigurationError(f"need at least one item, got {n_items}")
    if slow_tail_factor < 1.0:
        raise ConfigurationError("slow_tail_factor must be ≥ 1")
    if n_items == 1:
        return np.ones(1)
    ranks = np.arange(1, n_items + 1, dtype=float)
    scaled = np.log(ranks) / np.log(float(n_items))
    return 1.0 + (slow_tail_factor - 1.0) * scaled
