"""Ah-Q: system entropy and the ARQ scheduler — an HPCA 2023 reproduction.

The public API in one import::

    from repro import (
        Collocation, LCMember, BEMember,       # describe a collocation
        ARQScheduler, PartiesScheduler, ...,   # pick a strategy
        run_collocation,                        # run it
        system_entropy, lc_entropy, be_entropy  # the theory
    )

See ``DESIGN.md`` for the module inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.cluster import (
    BEMember,
    Collocation,
    LCMember,
    RunResult,
    run_collocation,
)
from repro.parallel import (
    ParallelRunError,
    RunGrid,
    RunPoint,
    run_many,
)
from repro.entropy import (
    BEObservation,
    LCObservation,
    SystemObservation,
    be_entropy,
    lc_entropy,
    resource_equivalence,
    system_entropy,
)
from repro.schedulers import (
    ARQScheduler,
    CLITEScheduler,
    LCFirstScheduler,
    PartiesScheduler,
    RegionPlan,
    Scheduler,
    StaticScheduler,
    UnmanagedScheduler,
)
from repro.server import NodeSpec, PAPER_NODE, ResourceVector, ServerNode
from repro.workloads import (
    BE_APPLICATIONS,
    LC_APPLICATIONS,
    ConstantLoad,
    FluctuatingLoad,
    be_profile,
    lc_profile,
)

__version__ = "1.0.0"

__all__ = [
    "ARQScheduler",
    "BEMember",
    "BEObservation",
    "BE_APPLICATIONS",
    "CLITEScheduler",
    "Collocation",
    "ConstantLoad",
    "FluctuatingLoad",
    "LCFirstScheduler",
    "LCMember",
    "LCObservation",
    "LC_APPLICATIONS",
    "NodeSpec",
    "PAPER_NODE",
    "ParallelRunError",
    "PartiesScheduler",
    "RegionPlan",
    "ResourceVector",
    "RunGrid",
    "RunPoint",
    "RunResult",
    "Scheduler",
    "ServerNode",
    "StaticScheduler",
    "SystemObservation",
    "UnmanagedScheduler",
    "be_entropy",
    "be_profile",
    "lc_entropy",
    "lc_profile",
    "resource_equivalence",
    "run_collocation",
    "run_many",
    "system_entropy",
]
