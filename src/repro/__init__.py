"""Ah-Q: system entropy and the ARQ scheduler — an HPCA 2023 reproduction.

The public API in one import::

    from repro import (
        run, compare, RunConfig, RunSummary,   # the high-level facade
        Collocation, LCMember, BEMember,       # describe a collocation
        ARQScheduler, PartiesScheduler, ...,   # pick a strategy
        run_collocation,                        # run it
        system_entropy, lc_entropy, be_entropy  # the theory
    )

Datacenter scale lives in :mod:`repro.datacenter`: placements pack a
population of members onto nodes, :class:`Datacenter` shards the node
runs over the warm worker pool (byte-identical at any ``jobs``), and
:class:`EntropyGuidedMigration` rebalances between global epochs using
measured per-node ``E_S`` as the interference score — the headline names
are re-exported here.

Observability lives in :mod:`repro.obs`: structured trace events
(``repro.obs.events``), a metrics registry (``repro.obs.metrics``),
bounded streaming time windows with the ``why_slow`` provenance query
(``repro.obs.windows``/``repro.obs.stream``) and exporters
(``repro.obs.export``); the most-used entry points are re-exported here.

See ``DESIGN.md`` for the module inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.api import ABConfig, RunConfig, RunSummary, ab, compare, run
from repro.check import (
    CheckConfig,
    CheckingTracer,
    LittlesLawReport,
    check_trace,
    littles_law_report,
)
from repro.check.differential import differential_check
from repro.cluster import (
    BEMember,
    Collocation,
    LCMember,
    RunResult,
    run_collocation,
)
from repro.datacenter import (
    Assignment,
    BinPackingPlacement,
    ClusterFaultPlan,
    Datacenter,
    DatacenterCheckpoint,
    DatacenterResult,
    DatacenterTimeline,
    EntropyAwarePlacement,
    EntropyGuidedMigration,
    MigrationPolicy,
    Move,
    NodeCrash,
    NodeFaultSpec,
    NodeFlap,
    NodeStraggle,
    Placement,
    Quarantine,
    RoundRobinPlacement,
    ShardReport,
    SummaryCorruption,
    SummaryLoss,
    cluster_fault_preset,
    migration_policy,
)
from repro.experiment import (
    ABResult,
    Estimate,
    InterleavedDesign,
    PairedDesign,
    SwitchbackDesign,
    SwitchbackScheduler,
    TrialMetrics,
    ab_compare,
    design_of,
    difference_in_means,
    dq_difference,
    paired_difference,
)
from repro.errors import (
    AllocationError,
    CheckError,
    ConfigurationError,
    FaultError,
    MeasurementError,
    ModelError,
    ReproError,
    SchedulingError,
    SimulationError,
    TelemetryCorruptionError,
    UnknownApplicationError,
)
from repro.faults import (
    BEBurst,
    CapacityDegradation,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LoadSpike,
    QpsRamp,
    TelemetryCorruption,
    TelemetryDropout,
    fault_preset,
)
from repro.parallel import (
    BatchReport,
    ParallelRunError,
    PointFailure,
    RunGrid,
    RunPoint,
    run_many,
)
from repro.entropy import (
    BEObservation,
    LCObservation,
    SystemObservation,
    be_entropy,
    lc_entropy,
    resource_equivalence,
    system_entropy,
)
from repro.schedulers import (
    ARQScheduler,
    CLITEScheduler,
    LCFirstScheduler,
    PartiesScheduler,
    RegionPlan,
    Scheduler,
    StaticScheduler,
    UnmanagedScheduler,
)
from repro.obs.events import (
    CheckpointWritten,
    CollectingTracer,
    InvariantViolation,
    NodeQuarantined,
    NodeRecovered,
    NullTracer,
    TraceEvent,
    Tracer,
    compose_tracers,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import (
    WhySlowReport,
    WindowConfig,
    WindowSummary,
    WindowedTracer,
    merge_window_summaries,
    why_slow,
)
from repro.server import NodeSpec, PAPER_NODE, ResourceVector, ServerNode
from repro.workloads import (
    BE_APPLICATIONS,
    LC_APPLICATIONS,
    ConstantLoad,
    DiurnalLoad,
    FluctuatingLoad,
    TimeShiftedLoad,
    be_profile,
    lc_profile,
)

__version__ = "1.0.0"

__all__ = [
    "ABConfig",
    "ABResult",
    "ARQScheduler",
    "AllocationError",
    "Assignment",
    "BEBurst",
    "BEMember",
    "BEObservation",
    "BE_APPLICATIONS",
    "BatchReport",
    "BinPackingPlacement",
    "CLITEScheduler",
    "CapacityDegradation",
    "CheckConfig",
    "CheckError",
    "CheckingTracer",
    "CheckpointWritten",
    "ClusterFaultPlan",
    "CollectingTracer",
    "Collocation",
    "ConfigurationError",
    "ConstantLoad",
    "Datacenter",
    "DatacenterCheckpoint",
    "DatacenterResult",
    "DatacenterTimeline",
    "DiurnalLoad",
    "EntropyAwarePlacement",
    "EntropyGuidedMigration",
    "Estimate",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FluctuatingLoad",
    "InterleavedDesign",
    "InvariantViolation",
    "LCFirstScheduler",
    "LCMember",
    "LCObservation",
    "LC_APPLICATIONS",
    "LittlesLawReport",
    "LoadSpike",
    "MeasurementError",
    "MetricsRegistry",
    "MigrationPolicy",
    "ModelError",
    "Move",
    "NodeCrash",
    "NodeFaultSpec",
    "NodeFlap",
    "NodeQuarantined",
    "NodeRecovered",
    "NodeSpec",
    "NodeStraggle",
    "NullTracer",
    "PAPER_NODE",
    "PairedDesign",
    "ParallelRunError",
    "PartiesScheduler",
    "Placement",
    "PointFailure",
    "QpsRamp",
    "Quarantine",
    "RegionPlan",
    "ReproError",
    "ResourceVector",
    "RoundRobinPlacement",
    "RunConfig",
    "RunGrid",
    "RunPoint",
    "RunResult",
    "RunSummary",
    "Scheduler",
    "SchedulingError",
    "ServerNode",
    "ShardReport",
    "SimulationError",
    "StaticScheduler",
    "SummaryCorruption",
    "SummaryLoss",
    "SwitchbackDesign",
    "SwitchbackScheduler",
    "SystemObservation",
    "TelemetryCorruption",
    "TelemetryCorruptionError",
    "TelemetryDropout",
    "TimeShiftedLoad",
    "TraceEvent",
    "Tracer",
    "TrialMetrics",
    "UnknownApplicationError",
    "UnmanagedScheduler",
    "WhySlowReport",
    "WindowConfig",
    "WindowSummary",
    "WindowedTracer",
    "ab",
    "ab_compare",
    "be_entropy",
    "be_profile",
    "check_trace",
    "cluster_fault_preset",
    "compare",
    "compose_tracers",
    "design_of",
    "difference_in_means",
    "differential_check",
    "dq_difference",
    "fault_preset",
    "lc_entropy",
    "lc_profile",
    "littles_law_report",
    "merge_window_summaries",
    "migration_policy",
    "paired_difference",
    "resource_equivalence",
    "run",
    "run_collocation",
    "run_many",
    "system_entropy",
    "why_slow",
]
