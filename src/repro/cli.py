"""Command-line interface: ``python -m repro <command>``.

Six commands:

* ``run`` — run one strategy on a named mix and print the summary
  (optionally exporting per-epoch samples, traces and metrics);
* ``compare`` — run several strategies on the same mix side by side;
* ``experiment`` — regenerate one of the paper's tables/figures by name;
* ``check`` — the verification harness: golden-trace regression,
  differential cross-checks and Little's-law consistency
  (``--regen`` rewrites the fixtures, ``--strict`` demands
  byte-identical traces);
* ``windows`` — streaming window analytics over a recorded trace:
  ``windows why-slow`` ranks the causes of a tail-latency spike,
  ``windows dump`` exports bounded per-window aggregates;
* ``datacenter`` — the sharded global epoch loop: a diurnal population
  on ``--nodes`` machines, optional ``--migration entropy``
  rebalancing, results byte-identical at any ``--jobs``
  (``--json PATH`` dumps the canonical timeline for diffing).
  ``--chaos SPEC`` (a preset name or a fault-plan JSON file) runs the
  degraded-mode loop — crashed nodes are quarantined and their tenants
  failed over; ``--retries N`` retries transient node failures;
  ``--checkpoint PATH``/``--checkpoint-every K``/``--resume`` snapshot
  the loop every K epochs and resume byte-identically after a kill.

Examples::

    python -m repro run --strategy arq --xapian 0.7 --be stream
    python -m repro run --mix fig8 --trace t.jsonl --metrics m.prom
    python -m repro compare --xapian 0.9 --duration 120
    python -m repro experiment table2
    python -m repro experiment fig10 --jobs 4
    python -m repro experiment fig15 --quick
    python -m repro check --strict --jobs 2
    python -m repro check --regen --mix canonical
    python -m repro run --mix fig8 --window 1.0 --windows-out w.csv
    python -m repro windows why-slow trace.jsonl --t0 30 --t1 40
    python -m repro windows dump trace.jsonl --out windows.jsonl
    python -m repro datacenter --nodes 200 --epochs 4 --jobs 4
    python -m repro datacenter --nodes 200 --migration entropy --json dc.json
    python -m repro datacenter --nodes 48 --chaos rolling --retries 1
    python -m repro datacenter --checkpoint ck.json --checkpoint-every 2
    python -m repro datacenter --epochs 8 --checkpoint ck.json --resume

``--jobs N`` (or ``REPRO_JOBS=N``) fans independent runs across N worker
processes; results are bit-identical for any worker count. The default is
the machine's CPU count.

Observability flags (``run``/``compare``): ``--trace PATH`` writes the
structured event stream as JSONL, ``--metrics PATH`` writes the run's
metric registry (``.csv`` or Prometheus text by extension), ``--verbose``
narrates scheduler activity live, and ``--quiet`` suppresses all stdout
reporting (exports still happen). ``--window DT`` folds the event stream
into bounded time windows as the run executes (``--window-keep K`` sets
the ring size) and ``--windows-out PATH`` dumps the per-window aggregates
(``.csv``/``.jsonl``/Prometheus by extension).

Fault injection (``run``/``compare``): ``--faults plan.json`` loads a
:class:`~repro.faults.plan.FaultPlan` from disk, while
``--fault-preset NAME`` (with optional ``--fault-intensity X``) uses one
of the built-in campaigns (``telemetry-dropout``, ``chaos``, ...). Fault
effects are pure functions of the simulated clock, so faulted runs stay
bit-reproducible. ``experiment ... --quick`` runs an experiment's reduced
smoke-test sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.differential import differential_check
from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_MIXES,
    compare_cases,
    default_cases,
    record_cases,
)
from repro.check.invariants import littles_law_report
from repro.errors import FaultError
from repro.experiment.design import DESIGN_NAMES
from repro.experiments.common import (
    MIX_PRESETS,
    STRATEGY_FACTORIES,
    STRATEGY_ORDER,
    canonical_mix,
    make_collocation,
    run_strategies,
    set_quick,
)
from repro.datacenter.chaos import CLUSTER_FAULT_PRESETS
from repro.datacenter.migration import MIGRATION_POLICIES
from repro.faults.plan import FAULT_PRESETS, FaultPlan, fault_preset
from repro.experiments.reporting import ascii_table
from repro.cluster.run import run_collocation
from repro.obs.events import Tracer, compose_tracers
from repro.obs.export import (
    JsonlTraceWriter,
    NarratorTracer,
    say,
    set_quiet,
    summary_dict,
    write_csv,
    write_json,
    write_metrics,
    write_windows,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import fold_trace
from repro.obs.windows import (
    WindowConfig,
    merge_window_summaries,
    why_slow,
)
from repro.parallel import set_default_jobs

#: Experiment name → zero-argument callable printing the artefact.
_EXPERIMENTS: Dict[str, str] = {
    "fig1": "repro.experiments.fig1_example",
    "table2": "repro.experiments.table2_resource_sensitivity",
    "fig2": "repro.experiments.fig2_resource_surface",
    "fig3": "repro.experiments.fig3_equivalence",
    "fig4": "repro.experiments.fig4_spacetime",
    "fig5_fig6": "repro.experiments.fig5_fig6_snapshots",
    "fig7": "repro.experiments.fig7_load_curves",
    "fig8": "repro.experiments.fig8_fluidanimate",
    "fig9": "repro.experiments.fig9_stream",
    "fig10": "repro.experiments.fig10_heatmap",
    "fig11": "repro.experiments.fig11_sphinx_mix",
    "fig12": "repro.experiments.fig12_eight_apps",
    "fig13": "repro.experiments.fig13_fluctuating",
    "fig14": "repro.experiments.fig14_resilience",
    "fig15": "repro.experiments.fig15_datacenter",
    "fig16": "repro.experiments.fig16_chaos",
    "fig17": "repro.experiments.fig17_ab",
}

#: ``--mix`` presets — canonically defined in
#: :data:`repro.experiments.common.MIX_PRESETS`; this alias preserves the
#: CLI's historical name.
_MIXES: Dict[str, Tuple[Dict[str, float], List[str]]] = MIX_PRESETS


def _mix_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mix",
        choices=sorted(_MIXES),
        default=None,
        help="named mix preset (overrides the per-application load flags)",
    )
    parser.add_argument("--xapian", type=float, default=0.5, help="Xapian load")
    parser.add_argument("--moses", type=float, default=0.2, help="Moses load")
    parser.add_argument("--img-dnn", type=float, default=0.2, help="Img-dnn load")
    parser.add_argument(
        "--be",
        default="fluidanimate",
        help="best-effort application (fluidanimate/stream/streamcluster)",
    )
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--warmup", type=float, default=None)
    parser.add_argument("--seed", type=int, default=2023)
    _jobs_argument(parser)
    _observability_arguments(parser)
    _fault_arguments(parser)


def _jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent runs "
        "(default: $REPRO_JOBS or the CPU count; 1 = serial)",
    )


def _observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the structured event stream as JSONL",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write run metrics (.csv, else Prometheus text format)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="narrate scheduler decisions and violations live",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all stdout reporting (file exports still happen)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="DT",
        help="fold the event stream into DT-second windows (bounded memory)",
    )
    parser.add_argument(
        "--window-keep",
        type=int,
        default=256,
        metavar="K",
        help="ring size: keep only the last K windows (default 256)",
    )
    parser.add_argument(
        "--windows-out",
        metavar="PATH",
        default=None,
        help="write per-window aggregates (.csv/.jsonl, else Prometheus); "
        "implies --window 1.0 when --window is not given",
    )


def _window_config(args: argparse.Namespace) -> Optional[WindowConfig]:
    """Resolve the ``--window``/``--window-keep`` flags to a config."""
    if args.window is None and args.windows_out is None:
        return None
    dt_s = args.window if args.window is not None else 1.0
    return WindowConfig(dt_s=dt_s, keep=args.window_keep)


def _fault_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="load a deterministic fault plan from a JSON file",
    )
    group.add_argument(
        "--fault-preset",
        choices=sorted(FAULT_PRESETS),
        default=None,
        help="use a built-in fault campaign",
    )
    parser.add_argument(
        "--fault-intensity",
        type=float,
        default=1.0,
        metavar="X",
        help="scale factor for --fault-preset (0 disables, 2 doubles "
        "fault windows; default 1)",
    )


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Resolve the ``--faults``/``--fault-preset`` flags to a plan."""
    if args.faults is not None:
        return FaultPlan.load(args.faults)
    if args.fault_preset is not None:
        plan = fault_preset(args.fault_preset, args.fault_intensity)
        return plan if len(plan) else None
    if args.fault_intensity != 1.0:
        raise FaultError("--fault-intensity requires --fault-preset")
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ah-Q reproduction: system entropy + the ARQ scheduler",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one strategy on a mix")
    run_parser.add_argument(
        "--strategy", choices=sorted(STRATEGY_FACTORIES), default="arq"
    )
    _mix_arguments(run_parser)
    run_parser.add_argument("--csv", help="export per-epoch samples to CSV")
    run_parser.add_argument("--json", help="export summary+samples to JSON")

    compare_parser = commands.add_parser(
        "compare", help="run every strategy on the same mix"
    )
    _mix_arguments(compare_parser)

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment_parser.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS) + ["ab"],
        help="a committed figure/table, or 'ab' for a policy A/B comparison",
    )
    _jobs_argument(experiment_parser)
    experiment_parser.add_argument(
        "--quiet", action="store_true", help="suppress stdout reporting"
    )
    experiment_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the experiment's reduced smoke-test sweep",
    )
    experiment_parser.add_argument(
        "--a", dest="policy_a", choices=sorted(STRATEGY_FACTORIES),
        default="arq", help="[ab] arm A policy",
    )
    experiment_parser.add_argument(
        "--b", dest="policy_b", choices=sorted(STRATEGY_FACTORIES),
        default="unmanaged", help="[ab] arm B policy",
    )
    experiment_parser.add_argument(
        "--mix", choices=sorted(_MIXES), default="canonical",
        help="[ab] named mix preset",
    )
    experiment_parser.add_argument(
        "--design", choices=sorted(DESIGN_NAMES), default="paired",
        help="[ab] trial design",
    )
    experiment_parser.add_argument(
        "--trials", type=int, default=20, help="[ab] number of design trials"
    )
    experiment_parser.add_argument(
        "--seed", type=int, default=2023, help="[ab] base seed"
    )
    experiment_parser.add_argument(
        "--duration", type=float, default=None,
        help="[ab] per-run duration (defaults to the design's timing)",
    )
    experiment_parser.add_argument(
        "--warmup", type=float, default=None,
        help="[ab] per-run warm-up (defaults to the design's timing)",
    )
    experiment_parser.add_argument(
        "--json", action="store_true",
        help="[ab] print canonical JSON instead of tables",
    )

    check_parser = commands.add_parser(
        "check",
        help="verify golden traces, invariants and strategy ordering",
    )
    check_parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite the golden fixtures instead of comparing against them",
    )
    check_parser.add_argument(
        "--strict",
        action="store_true",
        help="require byte-identical golden traces (default: float tolerance)",
    )
    check_parser.add_argument(
        "--mix",
        action="append",
        choices=sorted(GOLDEN_MIXES),
        default=None,
        help="restrict to one mix (repeatable; default: all golden mixes)",
    )
    check_parser.add_argument(
        "--golden-dir",
        metavar="DIR",
        default=None,
        help="fixture directory (default: tests/golden in the repository)",
    )
    _jobs_argument(check_parser)
    check_parser.add_argument(
        "--quiet", action="store_true", help="suppress stdout reporting"
    )

    datacenter_parser = commands.add_parser(
        "datacenter",
        help="run the sharded diurnal datacenter simulation",
    )
    datacenter_parser.add_argument(
        "--nodes", type=int, default=200, help="cluster size (default 200)"
    )
    datacenter_parser.add_argument(
        "--epochs", type=int, default=4, help="global epochs (default 4)"
    )
    datacenter_parser.add_argument(
        "--epoch-duration", type=float, default=30.0, metavar="S",
        help="simulated seconds per global epoch (default 30)",
    )
    datacenter_parser.add_argument(
        "--strategy", choices=sorted(STRATEGY_FACTORIES), default="arq",
        help="per-node scheduling strategy (default arq)",
    )
    datacenter_parser.add_argument(
        "--migration", choices=sorted(MIGRATION_POLICIES), default="none",
        help="between-epoch rebalancing policy (default none)",
    )
    datacenter_parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="migration moves per epoch (default: one per eight nodes)",
    )
    datacenter_parser.add_argument(
        "--hysteresis", type=float, default=0.02, metavar="GAP",
        help="minimum donor-recipient E_S gap to justify a move",
    )
    datacenter_parser.add_argument("--seed", type=int, default=2023)
    datacenter_parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="per-node retry attempts on transient failure (default 0)",
    )
    datacenter_parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="cluster fault plan: a JSON file path, or a preset name "
        f"({', '.join(sorted(CLUSTER_FAULT_PRESETS))}); enables the "
        "degraded-mode loop (quarantine + failover)",
    )
    datacenter_parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write a canonical-JSON epoch checkpoint to PATH",
    )
    datacenter_parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="K",
        help="checkpoint every K global epochs (default 1)",
    )
    datacenter_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists (byte-identical to "
        "an uninterrupted run at any --jobs)",
    )
    datacenter_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the canonical timeline JSON (sorted keys — "
        "byte-identical at any --jobs; '-' for stdout)",
    )
    _jobs_argument(datacenter_parser)
    datacenter_parser.add_argument(
        "--quiet", action="store_true", help="suppress stdout reporting"
    )

    windows_parser = commands.add_parser(
        "windows",
        help="streaming window analytics over a recorded JSONL trace",
    )
    window_commands = windows_parser.add_subparsers(
        dest="windows_command", required=True
    )

    why_parser = window_commands.add_parser(
        "why-slow",
        help="rank the causes of a tail-latency spike in a trace",
    )
    why_parser.add_argument("trace", help="JSONL trace file to fold")
    why_parser.add_argument(
        "--t0", type=float, default=None, metavar="S",
        help="spike range start (simulated seconds); omit to auto-detect",
    )
    why_parser.add_argument(
        "--t1", type=float, default=None, metavar="S",
        help="spike range end (simulated seconds); omit to auto-detect",
    )
    why_parser.add_argument(
        "--app", default=None, metavar="NAME",
        help="restrict spike statistics to one LC application",
    )
    _windowing_arguments(why_parser)

    dump_parser = window_commands.add_parser(
        "dump", help="fold a trace and export its per-window aggregates"
    )
    dump_parser.add_argument("trace", help="JSONL trace file to fold")
    dump_parser.add_argument(
        "--out", required=True, metavar="PATH",
        help="output path (.csv/.jsonl, else Prometheus text)",
    )
    dump_parser.add_argument(
        "--append", action="store_true",
        help="append to the output file instead of overwriting",
    )
    _windowing_arguments(dump_parser)

    return parser


def _windowing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window", type=float, default=1.0, metavar="DT",
        help="window width in simulated seconds (default 1.0)",
    )
    parser.add_argument(
        "--window-keep", type=int, default=4096, metavar="K",
        help="ring size: keep only the last K windows (default 4096)",
    )


def _collocation(args: argparse.Namespace):
    if args.mix is not None:
        lc_loads, be_names = _MIXES[args.mix]
        return make_collocation(dict(lc_loads), list(be_names), seed=args.seed)
    return canonical_mix(
        args.xapian,
        args.moses,
        getattr(args, "img_dnn"),
        be_name=args.be,
        seed=args.seed,
    )


def _observability(
    args: argparse.Namespace,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry], Optional[JsonlTraceWriter]]:
    """Build the tracer/metrics pair requested by the CLI flags.

    Returns ``(tracer, metrics, writer)``; the caller must close ``writer``
    (when not ``None``) after the run so the JSONL file is flushed.
    """
    set_quiet(bool(args.quiet))
    writer = JsonlTraceWriter(path=args.trace) if args.trace else None
    narrator = NarratorTracer() if args.verbose and not args.quiet else None
    tracer = compose_tracers(writer, narrator)
    metrics = MetricsRegistry() if args.metrics else None
    return tracer, metrics, writer


def _describe_mix(args: argparse.Namespace) -> str:
    if args.mix is not None:
        lc_loads, be_names = _MIXES[args.mix]
        lc = ", ".join(f"{name} {load:.0%}" for name, load in lc_loads.items())
        return f"{lc} + {'+'.join(be_names)}"
    return (
        f"xapian {args.xapian:.0%}, moses {args.moses:.0%}, "
        f"img-dnn {getattr(args, 'img_dnn'):.0%} + {args.be}"
    )


def _command_run(args: argparse.Namespace) -> int:
    collocation = _collocation(args)
    scheduler = STRATEGY_FACTORIES[args.strategy]()
    warmup = args.warmup if args.warmup is not None else args.duration * 0.5
    faults = _fault_plan(args)
    tracer, metrics, writer = _observability(args)
    window_config = _window_config(args)
    try:
        result = run_collocation(
            collocation,
            scheduler,
            args.duration,
            warmup,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            windows=window_config,
        )
    finally:
        if writer is not None:
            writer.close()
    summary = summary_dict(result)
    rows = [[key, value] for key, value in summary.items() if not isinstance(value, dict)]
    say(ascii_table(["metric", "value"], rows, title=f"run — {args.strategy}"))
    say("")
    tail_rows = [[app, f"{value:.2f}"] for app, value in summary["mean_tail_ms"].items()]
    ipc_rows = [[app, f"{value:.2f}"] for app, value in summary["mean_ipc"].items()]
    if tail_rows:
        say(ascii_table(["application", "mean tail (ms)"], tail_rows))
    if ipc_rows:
        say(ascii_table(["application", "mean IPC"], ipc_rows))
    if args.csv:
        say(f"wrote {write_csv(result, args.csv)}")
    if args.json:
        say(f"wrote {write_json(result, args.json)}")
    if args.trace:
        say(f"wrote {args.trace}")
    if metrics is not None:
        say(f"wrote {write_metrics(metrics, args.metrics)}")
    if result.window_report is not None:
        say("")
        say(result.window_report.describe())
        if args.windows_out:
            say(f"wrote {write_windows(result.window_report, path=args.windows_out)}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    collocation = _collocation(args)
    warmup = args.warmup if args.warmup is not None else args.duration * 0.5
    faults = _fault_plan(args)
    tracer, metrics, writer = _observability(args)
    window_config = _window_config(args)
    try:
        results = run_strategies(
            collocation,
            STRATEGY_ORDER,
            args.duration,
            warmup,
            jobs=args.jobs,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            windows=window_config,
        )
    finally:
        if writer is not None:
            writer.close()
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.mean_e_lc(),
                result.mean_e_be(),
                result.mean_e_s(),
                f"{result.yield_fraction():.0%}",
            ]
        )
    rows.sort(key=lambda row: row[3])
    say(
        ascii_table(
            ["strategy", "E_LC", "E_BE", "E_S", "yield"],
            rows,
            title=f"compare — {_describe_mix(args)}",
        )
    )
    if args.trace:
        say(f"wrote {args.trace}")
    if metrics is not None:
        say(f"wrote {write_metrics(metrics, args.metrics)}")
    if window_config is not None and args.windows_out:
        merged = merge_window_summaries(
            (result.window_report for result in results.values()),
            config=window_config,
        )
        say(f"wrote {write_windows(merged, path=args.windows_out)}")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    import pathlib

    set_quiet(bool(args.quiet))
    mixes = tuple(args.mix) if args.mix else GOLDEN_MIXES
    root = (
        pathlib.Path(args.golden_dir)
        if args.golden_dir is not None
        else DEFAULT_GOLDEN_DIR
    )
    cases = default_cases(mixes)
    if args.regen:
        written = record_cases(cases, root, jobs=args.jobs)
        say(f"wrote {len(written)} golden fixture file(s) under {root}")
        return 0

    ok = True
    report = compare_cases(
        cases, root, mode="exact" if args.strict else "tolerance", jobs=args.jobs
    )
    say(report.describe())
    ok = ok and report.ok
    for mix in mixes:
        differential = differential_check(mix, jobs=args.jobs)
        say(differential.describe())
        ok = ok and differential.ok
    law = littles_law_report()
    if law.ok:
        say(
            f"littles-law: ok (sim {law.sim_mean_ms:.2f}ms vs model "
            f"{law.model_mean_ms:.2f}ms, L={law.l_sim:.2f})"
        )
    else:
        say("littles-law: FAILED")
        for violation in law.violations:
            say(f"  {violation.invariant}: {violation.detail}")
    ok = ok and law.ok
    say("check: PASS" if ok else "check: FAIL")
    return 0 if ok else 1


def _command_experiment(args: argparse.Namespace) -> int:
    import importlib

    set_quiet(bool(args.quiet))
    if args.name == "ab":
        return _command_experiment_ab(args)
    set_quick(bool(args.quick))
    try:
        module = importlib.import_module(_EXPERIMENTS[args.name])
        module.main()
    finally:
        set_quick(False)
    return 0


def _command_experiment_ab(args: argparse.Namespace) -> int:
    """``repro experiment ab``: policy A/B comparison with error bars."""
    from repro.experiment import ab_compare

    trials = args.trials
    duration = args.duration
    warmup = args.warmup
    if args.quick and duration is None:
        trials = min(trials, 4)
        if args.design != "switchback":
            duration, warmup = 16.0, 8.0
    result = ab_compare(
        args.policy_a,
        args.policy_b,
        mix=args.mix,
        design=args.design,
        trials=trials,
        duration_s=duration,
        warmup_s=warmup,
        seed=args.seed,
    )
    if args.json:
        print(result.to_json())
    else:
        say(result.describe())
    return 0


def _chaos_plan(args: argparse.Namespace):
    """Resolve the ``--chaos`` flag to a :class:`ClusterFaultPlan`."""
    import os

    from repro.datacenter.chaos import ClusterFaultPlan, cluster_fault_preset

    if args.chaos is None:
        return None
    if args.chaos in CLUSTER_FAULT_PRESETS:
        return cluster_fault_preset(args.chaos, args.nodes)
    if os.path.exists(args.chaos):
        return ClusterFaultPlan.load(args.chaos)
    raise FaultError(
        f"--chaos {args.chaos!r}: not a preset "
        f"({', '.join(sorted(CLUSTER_FAULT_PRESETS))}) or an existing file"
    )


def _command_datacenter(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.datacenter import (
        BinPackingPlacement,
        Datacenter,
        migration_policy,
    )
    from repro.experiments.fig15_datacenter import build_population
    from repro.server.spec import NodeSpec

    set_quiet(bool(args.quiet))
    budget = args.budget if args.budget is not None else max(2, args.nodes // 8)
    policy = migration_policy(
        args.migration, budget=budget, hysteresis=args.hysteresis
    ) if args.migration != "none" else None
    chaos = _chaos_plan(args)
    datacenter = Datacenter(specs=(NodeSpec(),) * args.nodes)
    timeline = datacenter.run_epochs(
        build_population(args.nodes),
        BinPackingPlacement(),
        STRATEGY_FACTORIES[args.strategy],
        epochs=args.epochs,
        epoch_duration_s=args.epoch_duration,
        seed=args.seed,
        jobs=args.jobs,
        migration=policy,
        retries=args.retries,
        chaos=chaos,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    breakdown = timeline.breakdown()
    rows = [
        ["nodes", args.nodes],
        ["epochs", f"{args.epochs} x {args.epoch_duration:g}s"],
        ["strategy", args.strategy],
        ["migration", timeline.migration_name],
        ["pooled E_S", breakdown.e_s],
        ["pooled E_LC", breakdown.e_lc],
        ["pooled E_BE", breakdown.e_be],
        ["mean node E_S", timeline.mean_node_e_s()],
        ["QoS violations", timeline.violations()],
        ["moves", timeline.total_moves()],
    ]
    if chaos is not None:
        quarantined = sum(len(e.quarantined) for e in timeline.epochs)
        failovers = sum(len(e.failovers) for e in timeline.epochs)
        parked = sum(len(e.parked) for e in timeline.epochs)
        rows.extend(
            [
                ["quarantines", quarantined],
                ["failovers", failovers],
                ["parked tenant-epochs", parked],
            ]
        )
    if args.checkpoint:
        rows.append(["checkpoint", args.checkpoint])
    say(ascii_table(["metric", "value"], rows, precision=4, title="datacenter"))
    if args.json:
        payload = json_module.dumps(
            timeline.to_dict(), sort_keys=True, separators=(",", ":")
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            say(f"wrote {args.json}")
    return 0


def _command_windows(args: argparse.Namespace) -> int:
    config = WindowConfig(dt_s=args.window, keep=args.window_keep)
    summary = fold_trace(args.trace, config)
    if args.windows_command == "dump":
        path = write_windows(summary, path=args.out, append=bool(args.append))
        say(summary.describe())
        say(f"wrote {path}")
        return 0

    # why-slow: explicit range, or auto-detect the worst spike window.
    t0, t1 = args.t0, args.t1
    if (t0 is None) != (t1 is None):
        say("why-slow: give both --t0 and --t1, or neither (auto-detect)")
        return 2
    if t0 is None:
        spikes = summary.spike_windows()
        if not spikes:
            say(summary.describe())
            say("why-slow: no tail-latency spike detected "
                "(p99 stays near the run median); pass --t0/--t1 explicitly")
            return 1
        worst = max(
            spikes,
            key=lambda w: max(
                (s.percentile(99.0) for s in w.tails.values() if s.n),
                default=0.0,
            ),
        )
        t0, t1 = worst.start_s, worst.end_s
        say(f"auto-detected spike window [{t0:g}s, {t1:g}s)")
    report = why_slow(summary, t0, t1, app=args.app)
    say(report.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro``)."""
    args = _build_parser().parse_args(argv)
    if getattr(args, "jobs", None) is not None:
        # Make --jobs the process-wide default so experiment modules (whose
        # main() takes no arguments) resolve it through repro.parallel.
        set_default_jobs(args.jobs)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "run": _command_run,
        "compare": _command_compare,
        "experiment": _command_experiment,
        "check": _command_check,
        "windows": _command_windows,
        "datacenter": _command_datacenter,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
