"""Command-line interface: ``python -m repro <command>``.

Four commands:

* ``run`` — run one strategy on a named mix and print the summary
  (optionally exporting per-epoch samples, traces and metrics);
* ``compare`` — run several strategies on the same mix side by side;
* ``experiment`` — regenerate one of the paper's tables/figures by name;
* ``check`` — the verification harness: golden-trace regression,
  differential cross-checks and Little's-law consistency
  (``--regen`` rewrites the fixtures, ``--strict`` demands
  byte-identical traces).

Examples::

    python -m repro run --strategy arq --xapian 0.7 --be stream
    python -m repro run --mix fig8 --trace t.jsonl --metrics m.prom
    python -m repro compare --xapian 0.9 --duration 120
    python -m repro experiment table2
    python -m repro experiment fig10 --jobs 4
    python -m repro check --strict --jobs 2
    python -m repro check --regen --mix canonical

``--jobs N`` (or ``REPRO_JOBS=N``) fans independent runs across N worker
processes; results are bit-identical for any worker count. The default is
the machine's CPU count.

Observability flags (``run``/``compare``): ``--trace PATH`` writes the
structured event stream as JSONL, ``--metrics PATH`` writes the run's
metric registry (``.csv`` or Prometheus text by extension), ``--verbose``
narrates scheduler activity live, and ``--quiet`` suppresses all stdout
reporting (exports still happen).

Fault injection (``run``/``compare``): ``--faults plan.json`` loads a
:class:`~repro.faults.plan.FaultPlan` from disk, while
``--fault-preset NAME`` (with optional ``--fault-intensity X``) uses one
of the built-in campaigns (``telemetry-dropout``, ``chaos``, ...). Fault
effects are pure functions of the simulated clock, so faulted runs stay
bit-reproducible. ``experiment ... --quick`` runs an experiment's reduced
smoke-test sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.differential import differential_check
from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_MIXES,
    compare_cases,
    default_cases,
    record_cases,
)
from repro.check.invariants import littles_law_report
from repro.errors import FaultError
from repro.experiments.common import (
    MIX_PRESETS,
    STRATEGY_FACTORIES,
    STRATEGY_ORDER,
    canonical_mix,
    make_collocation,
    run_strategies,
    set_quick,
)
from repro.faults.plan import FAULT_PRESETS, FaultPlan, fault_preset
from repro.experiments.reporting import ascii_table
from repro.cluster.run import run_collocation
from repro.obs.events import Tracer, compose_tracers
from repro.obs.export import (
    JsonlTraceWriter,
    NarratorTracer,
    say,
    set_quiet,
    summary_dict,
    write_csv,
    write_json,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import set_default_jobs

#: Experiment name → zero-argument callable printing the artefact.
_EXPERIMENTS: Dict[str, str] = {
    "fig1": "repro.experiments.fig1_example",
    "table2": "repro.experiments.table2_resource_sensitivity",
    "fig2": "repro.experiments.fig2_resource_surface",
    "fig3": "repro.experiments.fig3_equivalence",
    "fig4": "repro.experiments.fig4_spacetime",
    "fig5_fig6": "repro.experiments.fig5_fig6_snapshots",
    "fig7": "repro.experiments.fig7_load_curves",
    "fig8": "repro.experiments.fig8_fluidanimate",
    "fig9": "repro.experiments.fig9_stream",
    "fig10": "repro.experiments.fig10_heatmap",
    "fig11": "repro.experiments.fig11_sphinx_mix",
    "fig12": "repro.experiments.fig12_eight_apps",
    "fig13": "repro.experiments.fig13_fluctuating",
    "fig14": "repro.experiments.fig14_resilience",
}

#: ``--mix`` presets — canonically defined in
#: :data:`repro.experiments.common.MIX_PRESETS`; this alias preserves the
#: CLI's historical name.
_MIXES: Dict[str, Tuple[Dict[str, float], List[str]]] = MIX_PRESETS


def _mix_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mix",
        choices=sorted(_MIXES),
        default=None,
        help="named mix preset (overrides the per-application load flags)",
    )
    parser.add_argument("--xapian", type=float, default=0.5, help="Xapian load")
    parser.add_argument("--moses", type=float, default=0.2, help="Moses load")
    parser.add_argument("--img-dnn", type=float, default=0.2, help="Img-dnn load")
    parser.add_argument(
        "--be",
        default="fluidanimate",
        help="best-effort application (fluidanimate/stream/streamcluster)",
    )
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--warmup", type=float, default=None)
    parser.add_argument("--seed", type=int, default=2023)
    _jobs_argument(parser)
    _observability_arguments(parser)
    _fault_arguments(parser)


def _jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent runs "
        "(default: $REPRO_JOBS or the CPU count; 1 = serial)",
    )


def _observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the structured event stream as JSONL",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write run metrics (.csv, else Prometheus text format)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="narrate scheduler decisions and violations live",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all stdout reporting (file exports still happen)",
    )


def _fault_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="load a deterministic fault plan from a JSON file",
    )
    group.add_argument(
        "--fault-preset",
        choices=sorted(FAULT_PRESETS),
        default=None,
        help="use a built-in fault campaign",
    )
    parser.add_argument(
        "--fault-intensity",
        type=float,
        default=1.0,
        metavar="X",
        help="scale factor for --fault-preset (0 disables, 2 doubles "
        "fault windows; default 1)",
    )


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Resolve the ``--faults``/``--fault-preset`` flags to a plan."""
    if args.faults is not None:
        return FaultPlan.load(args.faults)
    if args.fault_preset is not None:
        plan = fault_preset(args.fault_preset, args.fault_intensity)
        return plan if len(plan) else None
    if args.fault_intensity != 1.0:
        raise FaultError("--fault-intensity requires --fault-preset")
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ah-Q reproduction: system entropy + the ARQ scheduler",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one strategy on a mix")
    run_parser.add_argument(
        "--strategy", choices=sorted(STRATEGY_FACTORIES), default="arq"
    )
    _mix_arguments(run_parser)
    run_parser.add_argument("--csv", help="export per-epoch samples to CSV")
    run_parser.add_argument("--json", help="export summary+samples to JSON")

    compare_parser = commands.add_parser(
        "compare", help="run every strategy on the same mix"
    )
    _mix_arguments(compare_parser)

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    _jobs_argument(experiment_parser)
    experiment_parser.add_argument(
        "--quiet", action="store_true", help="suppress stdout reporting"
    )
    experiment_parser.add_argument(
        "--quick",
        action="store_true",
        help="run the experiment's reduced smoke-test sweep",
    )

    check_parser = commands.add_parser(
        "check",
        help="verify golden traces, invariants and strategy ordering",
    )
    check_parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite the golden fixtures instead of comparing against them",
    )
    check_parser.add_argument(
        "--strict",
        action="store_true",
        help="require byte-identical golden traces (default: float tolerance)",
    )
    check_parser.add_argument(
        "--mix",
        action="append",
        choices=sorted(GOLDEN_MIXES),
        default=None,
        help="restrict to one mix (repeatable; default: all golden mixes)",
    )
    check_parser.add_argument(
        "--golden-dir",
        metavar="DIR",
        default=None,
        help="fixture directory (default: tests/golden in the repository)",
    )
    _jobs_argument(check_parser)
    check_parser.add_argument(
        "--quiet", action="store_true", help="suppress stdout reporting"
    )

    return parser


def _collocation(args: argparse.Namespace):
    if args.mix is not None:
        lc_loads, be_names = _MIXES[args.mix]
        return make_collocation(dict(lc_loads), list(be_names), seed=args.seed)
    return canonical_mix(
        args.xapian,
        args.moses,
        getattr(args, "img_dnn"),
        be_name=args.be,
        seed=args.seed,
    )


def _observability(
    args: argparse.Namespace,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry], Optional[JsonlTraceWriter]]:
    """Build the tracer/metrics pair requested by the CLI flags.

    Returns ``(tracer, metrics, writer)``; the caller must close ``writer``
    (when not ``None``) after the run so the JSONL file is flushed.
    """
    set_quiet(bool(args.quiet))
    writer = JsonlTraceWriter(args.trace) if args.trace else None
    narrator = NarratorTracer() if args.verbose and not args.quiet else None
    tracer = compose_tracers(writer, narrator)
    metrics = MetricsRegistry() if args.metrics else None
    return tracer, metrics, writer


def _describe_mix(args: argparse.Namespace) -> str:
    if args.mix is not None:
        lc_loads, be_names = _MIXES[args.mix]
        lc = ", ".join(f"{name} {load:.0%}" for name, load in lc_loads.items())
        return f"{lc} + {'+'.join(be_names)}"
    return (
        f"xapian {args.xapian:.0%}, moses {args.moses:.0%}, "
        f"img-dnn {getattr(args, 'img_dnn'):.0%} + {args.be}"
    )


def _command_run(args: argparse.Namespace) -> int:
    collocation = _collocation(args)
    scheduler = STRATEGY_FACTORIES[args.strategy]()
    warmup = args.warmup if args.warmup is not None else args.duration * 0.5
    faults = _fault_plan(args)
    tracer, metrics, writer = _observability(args)
    try:
        result = run_collocation(
            collocation,
            scheduler,
            args.duration,
            warmup,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
        )
    finally:
        if writer is not None:
            writer.close()
    summary = summary_dict(result)
    rows = [[key, value] for key, value in summary.items() if not isinstance(value, dict)]
    say(ascii_table(["metric", "value"], rows, title=f"run — {args.strategy}"))
    say("")
    tail_rows = [[app, f"{value:.2f}"] for app, value in summary["mean_tail_ms"].items()]
    ipc_rows = [[app, f"{value:.2f}"] for app, value in summary["mean_ipc"].items()]
    if tail_rows:
        say(ascii_table(["application", "mean tail (ms)"], tail_rows))
    if ipc_rows:
        say(ascii_table(["application", "mean IPC"], ipc_rows))
    if args.csv:
        say(f"wrote {write_csv(result, args.csv)}")
    if args.json:
        say(f"wrote {write_json(result, args.json)}")
    if args.trace:
        say(f"wrote {args.trace}")
    if metrics is not None:
        say(f"wrote {write_metrics(metrics, args.metrics)}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    collocation = _collocation(args)
    warmup = args.warmup if args.warmup is not None else args.duration * 0.5
    faults = _fault_plan(args)
    tracer, metrics, writer = _observability(args)
    try:
        results = run_strategies(
            collocation,
            STRATEGY_ORDER,
            args.duration,
            warmup,
            jobs=args.jobs,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
        )
    finally:
        if writer is not None:
            writer.close()
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.mean_e_lc(),
                result.mean_e_be(),
                result.mean_e_s(),
                f"{result.yield_fraction():.0%}",
            ]
        )
    rows.sort(key=lambda row: row[3])
    say(
        ascii_table(
            ["strategy", "E_LC", "E_BE", "E_S", "yield"],
            rows,
            title=f"compare — {_describe_mix(args)}",
        )
    )
    if args.trace:
        say(f"wrote {args.trace}")
    if metrics is not None:
        say(f"wrote {write_metrics(metrics, args.metrics)}")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    import pathlib

    set_quiet(bool(args.quiet))
    mixes = tuple(args.mix) if args.mix else GOLDEN_MIXES
    root = (
        pathlib.Path(args.golden_dir)
        if args.golden_dir is not None
        else DEFAULT_GOLDEN_DIR
    )
    cases = default_cases(mixes)
    if args.regen:
        written = record_cases(cases, root, jobs=args.jobs)
        say(f"wrote {len(written)} golden fixture file(s) under {root}")
        return 0

    ok = True
    report = compare_cases(
        cases, root, mode="exact" if args.strict else "tolerance", jobs=args.jobs
    )
    say(report.describe())
    ok = ok and report.ok
    for mix in mixes:
        differential = differential_check(mix, jobs=args.jobs)
        say(differential.describe())
        ok = ok and differential.ok
    law = littles_law_report()
    if law.ok:
        say(
            f"littles-law: ok (sim {law.sim_mean_ms:.2f}ms vs model "
            f"{law.model_mean_ms:.2f}ms, L={law.l_sim:.2f})"
        )
    else:
        say("littles-law: FAILED")
        for violation in law.violations:
            say(f"  {violation.invariant}: {violation.detail}")
    ok = ok and law.ok
    say("check: PASS" if ok else "check: FAIL")
    return 0 if ok else 1


def _command_experiment(args: argparse.Namespace) -> int:
    import importlib

    set_quiet(bool(args.quiet))
    set_quick(bool(args.quick))
    try:
        module = importlib.import_module(_EXPERIMENTS[args.name])
        module.main()
    finally:
        set_quick(False)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro``)."""
    args = _build_parser().parse_args(argv)
    if getattr(args, "jobs", None) is not None:
        # Make --jobs the process-wide default so experiment modules (whose
        # main() takes no arguments) resolve it through repro.parallel.
        set_default_jobs(args.jobs)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "run": _command_run,
        "compare": _command_compare,
        "experiment": _command_experiment,
        "check": _command_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
