"""The high-level facade: configure, run, compare — one import.

For scripts and notebooks that do not need the full object model::

    import repro

    summary = repro.run(repro.RunConfig(strategy="arq", duration_s=60))
    print(summary.mean_e_s)
    print(summary.to_json())

    by_strategy = repro.compare(repro.RunConfig(duration_s=60))
    best = min(by_strategy.values(), key=lambda s: s.mean_e_s)

:class:`RunConfig` is a declarative run description (strategy, mix, length,
seed); :func:`run` executes it and returns a :class:`RunSummary` — the same
headline numbers :func:`repro.obs.export.summary_dict` reports, as typed
attributes, with the full :class:`~repro.cluster.run.RunResult` attached
for drill-down. Observability plugs in through the same keyword-only
``tracer``/``metrics`` arguments the low-level entry points take.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.check.invariants import CheckConfig
from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult

# Datacenter-scale entry points, re-exported so facade users can scale
# from one collocation to a sharded cluster without a second import home.
from repro.datacenter import (  # noqa: F401
    BinPackingPlacement,
    ClusterFaultPlan,
    Datacenter,
    DatacenterCheckpoint,
    DatacenterResult,
    DatacenterTimeline,
    EntropyAwarePlacement,
    EntropyGuidedMigration,
    Quarantine,
    RoundRobinPlacement,
    cluster_fault_preset,
    migration_policy,
)
from repro.errors import ConfigurationError
from repro.experiment.design import DESIGN_NAMES
from repro.experiment.harness import ABResult
from repro.experiments.common import (
    DEFAULT_DURATION_S,
    MIX_PRESETS,
    STRATEGY_FACTORIES,
    STRATEGY_ORDER,
    make_collocation,
    run_strategies,
    run_strategy,
)
from repro.faults.plan import FaultPlan
from repro.obs.events import Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import WindowConfig, WindowSummary

#: The canonical three-LC mix at mid load (the paper's workhorse).
DEFAULT_LC_LOADS: Mapping[str, float] = {
    "xapian": 0.5,
    "moses": 0.2,
    "img-dnn": 0.2,
}
#: The canonical best-effort companion.
DEFAULT_BE_APPS: Tuple[str, ...] = ("fluidanimate",)


@dataclass(frozen=True)
class RunConfig:
    """A declarative description of one collocation run.

    Attributes
    ----------
    strategy:
        One of :data:`repro.experiments.common.STRATEGY_ORDER`.
    lc_loads:
        Latency-critical applications (catalog names) mapped to their load
        fraction of maximum throughput.
    be_apps:
        Best-effort applications (catalog names).
    duration_s / warmup_s:
        Run length and the window excluded from summaries (``None`` →
        :func:`repro.cluster.run.run_collocation`'s 20% default).
    seed:
        Master seed; every random stream derives from it, so equal configs
        produce bit-identical results.
    faults:
        Optional deterministic :class:`~repro.faults.plan.FaultPlan`
        applied on the simulated clock (see :mod:`repro.faults`); fault
        effects are pure functions of time, so faulted runs stay
        bit-reproducible too.
    checks:
        Optional runtime verification (see :mod:`repro.check`): ``"warn"``
        (or a :class:`~repro.check.invariants.CheckConfig`) collects
        invariant violations on the result, ``"strict"`` raises
        :class:`~repro.errors.CheckError` at the first one.
    windows:
        Optional bounded streaming aggregation (see
        :mod:`repro.obs.windows`): a
        :class:`~repro.obs.windows.WindowConfig` (or a bare ``dt_s``
        number) folds the run's event stream into a ring of fixed-``Δ``
        time windows at O(``keep``) memory, returned via
        :meth:`RunSummary.windows` and queryable with
        :func:`~repro.obs.windows.why_slow`.
    """

    strategy: str = "arq"
    lc_loads: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_LC_LOADS)
    )
    be_apps: Tuple[str, ...] = DEFAULT_BE_APPS
    duration_s: float = DEFAULT_DURATION_S
    warmup_s: Optional[float] = None
    seed: int = 2023
    faults: Optional[FaultPlan] = None
    checks: Optional[Union[CheckConfig, str]] = None
    windows: Optional[Union[WindowConfig, int, float]] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGY_FACTORIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; choose from "
                f"{sorted(STRATEGY_FACTORIES)}"
            )
        if not self.lc_loads:
            raise ConfigurationError("a run needs at least one LC application")
        if self.checks is not None:
            # Normalise the "warn"/"strict" shorthands once, at the edge.
            object.__setattr__(self, "checks", CheckConfig.of(self.checks))
        if self.windows is not None:
            # Same edge normalisation for the window shorthand.
            object.__setattr__(self, "windows", WindowConfig.of(self.windows))

    def collocation(self) -> Collocation:
        """The :class:`~repro.cluster.collocation.Collocation` described."""
        return make_collocation(
            dict(self.lc_loads), list(self.be_apps), seed=self.seed
        )

    def with_strategy(self, strategy: str) -> "RunConfig":
        """This config with a different strategy (validated)."""
        return replace(self, strategy=strategy)


@dataclass(frozen=True)
class RunSummary:
    """A run's headline numbers as a typed, serialisable record."""

    scheduler: str
    seed: int
    epoch_s: float
    warmup_s: float
    epochs: int
    mean_e_lc: float
    mean_e_be: float
    mean_e_s: float
    yield_fraction: float
    violations: int
    mean_tail_ms: Dict[str, float]
    mean_ipc: Dict[str, float]
    #: The full result, for drill-down; excluded from equality/serialisation.
    result: Optional[RunResult] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_result(cls, result: RunResult) -> "RunSummary":
        """Summarise a :class:`~repro.cluster.run.RunResult`."""
        return cls(
            scheduler=result.scheduler_name,
            seed=result.collocation.seed,
            epoch_s=result.collocation.epoch_s,
            warmup_s=result.warmup_s,
            epochs=len(result.records),
            mean_e_lc=result.mean_e_lc(),
            mean_e_be=result.mean_e_be(),
            mean_e_s=result.mean_e_s(),
            yield_fraction=result.yield_fraction(),
            violations=result.violation_count(),
            mean_tail_ms=result.mean_tail_latencies_ms(),
            mean_ipc=result.mean_ipcs(),
            result=result,
        )

    def windows(self) -> WindowSummary:
        """The run's bounded window summary (requires ``windows=`` config).

        Raises :class:`~repro.errors.ConfigurationError` when the run was
        not started with window aggregation — pass
        ``RunConfig(windows=WindowConfig(dt_s=..., keep=...))`` (or a bare
        ``dt_s`` number) to arm it.
        """
        report = self.result.window_report if self.result is not None else None
        if report is None:
            raise ConfigurationError(
                "this run was not window-aggregated; set RunConfig.windows "
                "(e.g. windows=WindowConfig(dt_s=1.0, keep=256))"
            )
        return report

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (the ``result`` drill-down is omitted)."""
        payload = asdict(self)
        payload.pop("result", None)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The summary serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run(
    config: Optional[RunConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    **overrides: object,
) -> RunSummary:
    """Execute one run described by ``config`` (or keyword overrides).

    ``run()`` with no arguments runs ARQ on the canonical mix;
    ``run(strategy="parties", duration_s=60)`` tweaks fields without
    building a :class:`RunConfig` by hand. ``tracer``/``metrics`` attach
    observability exactly as in
    :func:`repro.cluster.run.run_collocation`.
    """
    if config is None:
        config = RunConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    result = run_strategy(
        config.collocation(),
        config.strategy,
        config.duration_s,
        _warmup_of(config),
        tracer=tracer,
        metrics=metrics,
        faults=config.faults,
        checks=config.checks,
        windows=config.windows,
    )
    return RunSummary.from_result(result)


def compare(
    config: Optional[RunConfig] = None,
    strategies: Sequence[str] = STRATEGY_ORDER,
    jobs: Optional[int] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    **overrides: object,
) -> Dict[str, RunSummary]:
    """Run several strategies on the same mix, keyed in ``strategies`` order.

    The config's own ``strategy`` field is ignored — every name in
    ``strategies`` runs on the identical collocation, fanned across
    ``jobs`` worker processes with deterministic result, trace and metric
    aggregation.
    """
    if config is None:
        config = RunConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    results = run_strategies(
        config.collocation(),
        strategies,
        config.duration_s,
        _warmup_of(config),
        jobs=jobs,
        tracer=tracer,
        metrics=metrics,
        faults=config.faults,
        checks=config.checks,
        windows=config.windows,
    )
    return {
        name: RunSummary.from_result(result) for name, result in results.items()
    }


def _warmup_of(config: RunConfig) -> float:
    """The effective warm-up window (the run loop's 20% default)."""
    return (
        config.warmup_s if config.warmup_s is not None else 0.2 * config.duration_s
    )


@dataclass(frozen=True)
class ABConfig:
    """A declarative description of one policy A/B comparison.

    ``policy_a``/``policy_b`` are base strategy names; ``mix`` is a
    :data:`repro.experiments.common.MIX_PRESETS` key; ``design`` names a
    trial design from :data:`repro.experiment.design.DESIGN_NAMES`
    (``"paired"`` shares one seed and load draw per trial across both
    arms, ``"switchback"`` alternates both policies inside single runs,
    ``"interleaved"`` assigns arms to independent runs alternately).
    ``duration_s``/``warmup_s`` of ``None`` defer to the design's own
    timing. Equal configs produce byte-identical
    :class:`~repro.experiment.harness.ABResult` values at any job count.
    """

    policy_a: str = "arq"
    policy_b: str = "unmanaged"
    mix: str = "canonical"
    design: str = "paired"
    trials: int = 20
    duration_s: Optional[float] = None
    warmup_s: Optional[float] = None
    seed: int = 2023

    def __post_init__(self) -> None:
        for label, policy in (("policy_a", self.policy_a), ("policy_b", self.policy_b)):
            if policy not in STRATEGY_FACTORIES:
                raise ConfigurationError(
                    f"{label}={policy!r} is not a strategy; choose from "
                    f"{sorted(STRATEGY_FACTORIES)}"
                )
        if self.mix not in MIX_PRESETS:
            raise ConfigurationError(
                f"unknown mix {self.mix!r}; known mixes: {sorted(MIX_PRESETS)}"
            )
        if self.design not in DESIGN_NAMES:
            raise ConfigurationError(
                f"unknown design {self.design!r}; choose from {DESIGN_NAMES}"
            )
        if self.trials < 2:
            raise ConfigurationError(
                f"an A/B comparison needs >= 2 trials, got {self.trials}"
            )


def ab(
    config: Optional[ABConfig] = None,
    *,
    jobs: Optional[int] = None,
    **overrides: object,
) -> "ABResult":
    """Run the policy A/B comparison described by ``config``.

    ``ab()`` with no arguments compares ARQ against Unmanaged on the
    canonical mix with the paired design;
    ``ab(policy_b="clite", design="switchback")`` tweaks fields without
    building an :class:`ABConfig` by hand. Returns the
    :class:`~repro.experiment.harness.ABResult` with per-metric naive /
    paired / Differences-in-Q estimates and 95% confidence intervals.
    """
    from repro.experiment.harness import ab_compare

    if config is None:
        config = ABConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return ab_compare(
        config.policy_a,
        config.policy_b,
        mix=config.mix,
        design=config.design,
        trials=config.trials,
        duration_s=config.duration_s,
        warmup_s=config.warmup_s,
        seed=config.seed,
        jobs=jobs,
    )
