"""Shared primitive types used across the Ah-Q reproduction.

These are deliberately small, dependency-free value objects so that the
entropy theory (:mod:`repro.entropy`), the simulated server substrate
(:mod:`repro.server`) and the schedulers (:mod:`repro.schedulers`) can all
talk about the same things without importing each other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class AppKind(enum.Enum):
    """The two application classes the paper distinguishes (§I)."""

    LATENCY_CRITICAL = "lc"
    BEST_EFFORT = "be"

    @property
    def is_lc(self) -> bool:
        return self is AppKind.LATENCY_CRITICAL

    @property
    def is_be(self) -> bool:
        return self is AppKind.BEST_EFFORT


class ResourceKind(enum.Enum):
    """Resource types the schedulers actuate (cores, LLC ways, memory BW).

    The order mirrors the finite state machine PARTIES (and ARQ's
    ``findVictimResource``) cycles through: cores first, then LLC capacity,
    then memory bandwidth.
    """

    CORES = "cores"
    LLC_WAYS = "llc_ways"
    MEMBW = "membw"

    def next_kind(self) -> "ResourceKind":
        """Return the next resource type in FSM order (cyclic)."""
        order = list(ResourceKind)
        return order[(order.index(self) + 1) % len(order)]


@dataclass(frozen=True)
class QoSTarget:
    """QoS target of a latency-critical application.

    Attributes
    ----------
    tail_latency_ms:
        Maximum tail latency the user tolerates (``M_i`` in the paper,
        Table IV's "Tail Latency Threshold").
    percentile:
        The latency percentile the target refers to. The paper uses the
        95th percentile throughout (§V).
    elasticity:
        Relative elasticity of the threshold. The paper assumes 5%
        (§II-B): violations smaller than this are considered tolerable
        when comparing strategies.
    """

    tail_latency_ms: float
    percentile: float = 95.0
    elasticity: float = 0.05

    def __post_init__(self) -> None:
        if self.tail_latency_ms <= 0:
            raise ConfigurationError("tail_latency_ms must be positive")
        if not 0 < self.percentile < 100:
            raise ConfigurationError("percentile must be in (0, 100)")
        if not 0 <= self.elasticity < 1:
            raise ConfigurationError("elasticity must be in [0, 1)")

    @property
    def elastic_bound_ms(self) -> float:
        """The threshold inflated by the user's elasticity."""
        return self.tail_latency_ms * (1.0 + self.elasticity)


@dataclass(frozen=True)
class LoadPoint:
    """A load level for an LC application, as a fraction of its max load."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"load fraction must be within [0, 1], got {self.fraction}"
            )

    def qps(self, max_load_qps: float) -> float:
        """Absolute request rate at this load level."""
        return self.fraction * max_load_qps
