"""Analytic performance models backing the simulated substrate.

* :mod:`repro.perfmodel.queueing` — queueing models: the exact M/M/c
  ground truth, the G/G/c-with-capacity approximation used by the LC
  application profiles, and the overload backlog state (produces the
  Fig. 7 hockey-stick and the queue build-up dynamics the schedulers
  react to);
* :mod:`repro.perfmodel.missratio` — LLC miss-ratio curve and fitting;
* :mod:`repro.perfmodel.slowdown` — composition of core/cache/bandwidth
  effects into service rates and instruction throughput.
"""

from repro.perfmodel.queueing import (
    MMcQueue,
    OverloadState,
    QueueModel,
    erlang_c,
    percentile_sojourn_ms,
    service_quantile_ms,
    waiting_probability,
)
from repro.perfmodel.slowdown import (
    instruction_rate,
    memory_time_stretch,
    service_rate_per_core,
)

__all__ = [
    "MMcQueue",
    "OverloadState",
    "QueueModel",
    "erlang_c",
    "instruction_rate",
    "memory_time_stretch",
    "percentile_sojourn_ms",
    "service_quantile_ms",
    "service_rate_per_core",
    "waiting_probability",
]
