"""Queueing models for latency-critical applications.

Two models live here:

* :class:`MMcQueue` — the textbook M/M/c queue with its *exact* sojourn-time
  distribution (Erlang-C waiting probability, exponential waiting tail,
  exponential service). It is validated against the request-level
  discrete-event simulator and serves as the ground truth for the
  approximation below.

* :class:`QueueModel` — the G/G/c-style approximation the substrate
  actually uses. Real Tailbench applications have (a) service times far
  less variable than exponential and (b) a throughput *wall* that is not a
  pure function of core count (software serialisation, batching, harness
  limits). The model therefore separates:

  - **latency scale**: mean per-request service time with a gamma
    (Erlang-like) distribution of coefficient of variation ``service_cv``;
  - **throughput scale**: a capacity in requests/second, supplied by the
    caller (cores × per-core rate, possibly capped by the application's
    wall).

  The p-th percentile sojourn time is approximated as
  ``service-quantile + waiting-quantile`` with the waiting tail
  exponential at rate ``(capacity − λ) · 2/(1 + cv²)`` (Allen–Cunneen
  style) and waiting probability from Erlang-C on the equivalent offered
  load. This produces the hockey-stick curves of Fig. 7: flat at low
  load, exploding at the knee.

* :class:`OverloadState` — a fluid backlog carried across monitoring
  epochs. When ``λ ≥ capacity`` the queue grows and latency is dominated
  by draining the backlog; this is what makes scheduler reaction time
  observable (the paper notes PARTIES' core re-allocations can take
  >500 ms to take effect because of queues that built up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from scipy import special, stats

from repro.errors import ModelError

#: Latency cap so that fully-starved applications report a large but finite
#: tail latency (milliseconds).
MAX_LATENCY_MS = 1e6

#: Utilisation above which stationary formulas are abandoned for the fluid
#: overload model (stationary percentiles diverge as rho -> 1).
STATIONARY_RHO_LIMIT = 0.995

#: Master switch for the hot-path memoisation below. The cached and
#: uncached paths are numerically identical (scipy itself computes
#: ``gamma.ppf(q, a, scale)`` as ``gammaincinv(a, q) * scale``); the switch
#: exists so the perf harness (``benchmarks/perf/bench_sweep.py``) can
#: measure the speedup and the property tests can compare both paths.
_CACHES_ENABLED = True


def set_caches_enabled(enabled: bool) -> None:
    """Enable or disable the gamma-quantile and sojourn-time caches."""
    global _CACHES_ENABLED
    _CACHES_ENABLED = bool(enabled)


def caches_enabled() -> bool:
    """Whether the hot-path memoisation is currently active."""
    return _CACHES_ENABLED


def clear_caches() -> None:
    """Drop all memoised quantiles and sojourn times."""
    _unit_gamma_quantile.cache_clear()
    _cached_sojourn_ms.cache_clear()


@lru_cache(maxsize=4096)
def _unit_gamma_quantile(shape: float, percentile: float) -> float:
    """p-th percentile of Gamma(shape, scale=1).

    The gamma distribution is a scale family, so one cached unit-scale
    quantile serves every service time sharing a CV and percentile:
    ``ppf(p; shape, scale) = ppf(p; shape, 1) · scale``. scipy evaluates
    the scaled ppf exactly this way internally, so multiplying the cached
    value is bit-identical to calling ``stats.gamma.ppf`` directly —
    minus the per-call ``argsreduce``/broadcast overhead, which dominated
    the simulator's epoch loop before this cache existed.
    """
    return float(special.gammaincinv(shape, percentile / 100.0))


def _require_finite(label: str, value: float) -> None:
    """Reject NaN/±inf inputs with a :class:`ModelError`.

    Sign checks alone are not enough: every comparison against NaN is
    False, so ``x < 0`` guards let corrupt telemetry flow straight into
    the stationary formulas and out as NaN latencies.
    """
    if not math.isfinite(value):
        raise ModelError(f"{label} must be finite, got {value}")


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arriving request must wait.

    Parameters
    ----------
    servers:
        Number of servers ``c`` (≥ 1).
    offered_load:
        ``a = λ/μ`` in Erlangs; values ≥ ``c`` (unstable) return 1.0.
    """
    if servers < 1:
        raise ModelError(f"Erlang-C needs at least one server, got {servers}")
    _require_finite("offered load", offered_load)
    if offered_load < 0:
        raise ModelError(f"offered load cannot be negative: {offered_load}")
    if offered_load >= servers:
        return 1.0
    if offered_load == 0:
        return 0.0
    # Iterative Erlang-B, then convert to Erlang-C (numerically stable).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def waiting_probability(servers: float, utilisation: float) -> float:
    """Erlang-C waiting probability with fractional server interpolation."""
    _require_finite("utilisation", utilisation)
    if servers <= 0:
        return 1.0
    if utilisation >= 1.0:
        return 1.0
    if utilisation < 0:
        raise ModelError(f"utilisation cannot be negative: {utilisation}")
    lower = max(1, math.floor(servers))
    upper = math.ceil(servers)
    p_lower = erlang_c(lower, utilisation * lower)
    if upper <= lower:
        return p_lower
    p_upper = erlang_c(upper, utilisation * upper)
    fraction = servers - lower
    return (1.0 - fraction) * p_lower + fraction * p_upper


def concurrency_waiting_probability(slots: float, concurrency: float) -> float:
    """Erlang-C waiting probability over *concurrency slots*.

    ``concurrency = λ · service_time`` (Little's law) is the number of
    requests simultaneously in service; ``slots = capacity · service_time``
    is how many can be in service at once — the self-consistent server
    count of an M/G/c queue whose total completion rate is exactly the
    capacity. For applications whose throughput wall is software (locks,
    batching) rather than CPU, the slot count is far below the thread
    count, and vice versa for internally-pipelined servers. Fractional
    slot counts interpolate between the neighbouring integers; the floor
    of one slot reflects that a single in-flight request never waits.
    """
    _require_finite("concurrency", concurrency)
    if slots <= 0:
        return 1.0
    if concurrency < 0:
        raise ModelError(f"concurrency cannot be negative: {concurrency}")
    if concurrency >= slots:
        return 1.0
    slots = max(1.0, slots)
    if concurrency >= slots:
        return 1.0
    lower = math.floor(slots)
    upper = math.ceil(slots)
    p_lower = erlang_c(lower, concurrency) if concurrency < lower else 1.0
    if upper <= lower:
        return p_lower
    p_upper = erlang_c(upper, concurrency)
    fraction = slots - lower
    return (1.0 - fraction) * p_lower + fraction * p_upper


def service_quantile_ms(
    service_time_ms: float, percentile: float, service_cv: float
) -> float:
    """p-th percentile of a gamma-distributed service time.

    ``service_cv`` is the coefficient of variation: 1.0 reproduces the
    exponential distribution, values near 0 a deterministic service time.
    """
    _require_finite("service time", service_time_ms)
    _require_finite("service CV", service_cv)
    if service_time_ms < 0:
        raise ModelError(f"service time cannot be negative: {service_time_ms}")
    if service_cv < 0:
        raise ModelError(f"service CV cannot be negative: {service_cv}")
    if not 0 < percentile < 100:
        raise ModelError(f"percentile must be in (0, 100), got {percentile}")
    if service_time_ms == 0:
        return 0.0
    if service_cv < 1e-6:
        return service_time_ms
    shape = 1.0 / (service_cv * service_cv)
    scale = service_time_ms / shape
    if not _CACHES_ENABLED:
        return float(stats.gamma.ppf(percentile / 100.0, a=shape, scale=scale))
    # Rounding the shape to 12 decimals folds float noise in the CV into
    # one cache entry; for the catalog's literal CVs it is the identity.
    return _unit_gamma_quantile(round(shape, 12), percentile) * scale


@dataclass(frozen=True)
class QueueModel:
    """G/G/c approximation with an explicit capacity (module docstring).

    Attributes
    ----------
    arrival_rps:
        Request arrival rate λ.
    capacity_rps:
        Sustainable throughput of the whole application at its current
        allocation (cores × per-core rate, capped by the software wall).
    servers:
        Effective parallelism (may be fractional for time-sliced pools);
        only influences the waiting *probability*, not the capacity.
    service_time_ms:
        Mean per-request service time (latency scale).
    service_cv:
        Coefficient of variation of the service time.
    """

    arrival_rps: float
    capacity_rps: float
    servers: float
    service_time_ms: float
    service_cv: float = 1.0

    def __post_init__(self) -> None:
        _require_finite("arrival rate", self.arrival_rps)
        _require_finite("capacity", self.capacity_rps)
        _require_finite("server count", self.servers)
        _require_finite("service time", self.service_time_ms)
        _require_finite("service CV", self.service_cv)
        if self.arrival_rps < 0:
            raise ModelError("arrival rate cannot be negative")
        if self.capacity_rps < 0:
            raise ModelError("capacity cannot be negative")
        if self.servers < 0:
            raise ModelError("server count cannot be negative")
        if self.service_time_ms < 0:
            raise ModelError("service time cannot be negative")
        if self.service_cv < 0:
            raise ModelError("service CV cannot be negative")

    @property
    def utilisation(self) -> float:
        if self.capacity_rps <= 0:
            return float("inf")
        return self.arrival_rps / self.capacity_rps

    @property
    def concurrency(self) -> float:
        """Requests simultaneously in service (Little's law)."""
        return self.arrival_rps * self.service_time_ms / 1e3

    @property
    def slots(self) -> float:
        """Concurrency slots: in-service capacity of the consistent M/G/c."""
        return self.capacity_rps * self.service_time_ms / 1e3

    @property
    def is_stable(self) -> bool:
        return self.utilisation < 1.0

    def waiting_prob(self) -> float:
        """Probability an arrival finds every concurrency slot busy."""
        if self.utilisation >= 1.0:
            return 1.0
        return concurrency_waiting_probability(self.slots, self.concurrency)

    def waiting_quantile_ms(self, percentile: float = 95.0) -> float:
        """p-th percentile of the waiting time (0 when rarely waiting)."""
        if not 0 < percentile < 100:
            raise ModelError(f"percentile must be in (0, 100), got {percentile}")
        rho = self.utilisation
        if rho >= STATIONARY_RHO_LIMIT:
            return MAX_LATENCY_MS
        if self.arrival_rps == 0:
            return 0.0
        wait_prob = self.waiting_prob()
        survival = 1.0 - percentile / 100.0
        if wait_prob <= survival:
            return 0.0
        drain_rps = self.capacity_rps - self.arrival_rps
        tail_rate = drain_rps * 2.0 / (1.0 + self.service_cv * self.service_cv)
        wait_s = math.log(wait_prob / survival) / tail_rate
        return min(MAX_LATENCY_MS, wait_s * 1e3)

    def percentile_ms(self, percentile: float = 95.0) -> float:
        """Approximate p-th percentile sojourn time in milliseconds.

        The sojourn quantile blends the waiting and service contributions
        by the waiting probability: at low load it equals the service
        quantile exactly; near saturation it approaches
        ``waiting-quantile + mean service`` (a request deep in the waiting
        tail is not simultaneously deep in its own service tail). The
        blend is validated against the exact M/M/c distribution and the
        request-level simulator to within a few percent across
        utilisations.
        """
        if not self.is_stable or self.utilisation >= STATIONARY_RHO_LIMIT:
            return MAX_LATENCY_MS
        service_q = service_quantile_ms(
            self.service_time_ms, percentile, self.service_cv
        )
        wait_prob = self.waiting_prob()
        survival = 1.0 - percentile / 100.0
        # The discount weight starts at zero exactly where the waiting
        # quantile does (waiting probability = survival level), so the two
        # terms grow together and the percentile stays monotone in load.
        weight = max(0.0, (wait_prob - survival) / (1.0 - survival))
        blended_service = service_q - (service_q - self.service_time_ms) * weight
        blended = blended_service + self.waiting_quantile_ms(percentile)
        return min(MAX_LATENCY_MS, max(service_q, blended))

    def mean_sojourn_ms(self) -> float:
        """Approximate mean time in system (Allen–Cunneen waiting time)."""
        if not self.is_stable:
            return MAX_LATENCY_MS
        wait_prob = self.waiting_prob()
        drain_rps = self.capacity_rps - self.arrival_rps
        mean_wait_s = (
            wait_prob * (1.0 + self.service_cv * self.service_cv) / (2.0 * drain_rps)
        )
        return min(MAX_LATENCY_MS, (mean_wait_s * 1e3) + self.service_time_ms)


@dataclass(frozen=True)
class MMcQueue:
    """Exact stationary M/M/c queue (validation ground truth)."""

    arrival_rps: float
    service_rate_rps: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rps < 0:
            raise ModelError("arrival rate cannot be negative")
        if self.service_rate_rps <= 0:
            raise ModelError("service rate must be positive")
        if self.servers < 1:
            raise ModelError("server count must be at least 1")

    @property
    def capacity_rps(self) -> float:
        return self.service_rate_rps * self.servers

    @property
    def utilisation(self) -> float:
        return self.arrival_rps / self.capacity_rps

    @property
    def is_stable(self) -> bool:
        return self.utilisation < 1.0

    def sojourn_cdf(self, t_s: float) -> float:
        """Exact CDF of the sojourn time at ``t_s`` seconds."""
        if not self.is_stable:
            return 0.0
        if t_s <= 0:
            return 0.0
        mu = self.service_rate_rps
        wait_prob = erlang_c(self.servers, self.arrival_rps / mu)
        drain = self.capacity_rps - self.arrival_rps
        if abs(drain - mu) < 1e-12 * mu:
            conditional = 1.0 - math.exp(-mu * t_s) * (1.0 + mu * t_s)
        else:
            conditional = 1.0 - (
                drain * math.exp(-mu * t_s) - mu * math.exp(-drain * t_s)
            ) / (drain - mu)
        return (1.0 - wait_prob) * (1.0 - math.exp(-mu * t_s)) + wait_prob * conditional

    def mean_sojourn_ms(self) -> float:
        if not self.is_stable:
            return MAX_LATENCY_MS
        wait_prob = erlang_c(self.servers, self.arrival_rps / self.service_rate_rps)
        drain = self.capacity_rps - self.arrival_rps
        mean_s = 1.0 / self.service_rate_rps + wait_prob / drain
        return min(MAX_LATENCY_MS, mean_s * 1e3)

    def percentile_ms(self, percentile: float = 95.0) -> float:
        """Exact p-th percentile sojourn time via bisection on the CDF."""
        if not 0 < percentile < 100:
            raise ModelError(f"percentile must be in (0, 100), got {percentile}")
        if self.utilisation >= STATIONARY_RHO_LIMIT:
            return MAX_LATENCY_MS
        target = percentile / 100.0
        low = 0.0
        high = -math.log(max(1e-300, 1.0 - target)) / self.service_rate_rps
        while self.sojourn_cdf(high) < target:
            high *= 2.0
            if high * 1e3 > MAX_LATENCY_MS:
                return MAX_LATENCY_MS
        for _ in range(80):
            mid = 0.5 * (low + high)
            if self.sojourn_cdf(mid) < target:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high) * 1e3


@lru_cache(maxsize=131072)
def _cached_sojourn_ms(
    arrival_rps: float,
    capacity_rps: float,
    servers: float,
    service_time_ms: float,
    percentile: float,
    service_cv: float,
) -> float:
    model = QueueModel(
        arrival_rps=arrival_rps,
        capacity_rps=capacity_rps,
        servers=servers,
        service_time_ms=service_time_ms,
        service_cv=service_cv,
    )
    return model.percentile_ms(percentile)


def percentile_sojourn_ms(
    arrival_rps: float,
    capacity_rps: float,
    servers: float,
    service_time_ms: float,
    percentile: float = 95.0,
    service_cv: float = 1.0,
) -> float:
    """Convenience wrapper over :meth:`QueueModel.percentile_ms`.

    Memoised: within a run the scheduler revisits the same (load,
    allocation) operating points epoch after epoch, so the Erlang-C
    interpolation and gamma quantile behind each stationary evaluation are
    computed once per distinct argument tuple instead of once per epoch.
    The function is pure, so memoisation cannot change results.
    """
    if not _CACHES_ENABLED:
        return QueueModel(
            arrival_rps=arrival_rps,
            capacity_rps=capacity_rps,
            servers=servers,
            service_time_ms=service_time_ms,
            service_cv=service_cv,
        ).percentile_ms(percentile)
    return _cached_sojourn_ms(
        arrival_rps, capacity_rps, servers, service_time_ms, percentile, service_cv
    )


#: Maximum queue depth, expressed in seconds of work at the current service
#: capacity. Real serving stacks bound their queues (listen backlogs,
#: admission control, client timeouts); without a bound, a transient
#: mis-allocation would poison tail latency for the rest of a run.
BACKLOG_CAP_S = 0.5


@dataclass
class OverloadState:
    """Backlog carried across monitoring epochs (fluid overload model).

    One instance exists per LC application inside the cluster simulator.
    :meth:`step` advances one epoch and returns the epoch's observed
    percentile latency in milliseconds. All stationary evaluations go
    through the memoised :func:`percentile_sojourn_ms`, so an epoch at an
    already-seen operating point costs one dict lookup instead of an
    Erlang-C interpolation plus a scipy gamma quantile.
    """

    backlog_requests: float = 0.0
    backlog_cap_s: float = BACKLOG_CAP_S

    def step(
        self,
        arrival_rps: float,
        capacity_rps: float,
        servers: float,
        service_time_ms: float,
        epoch_s: float,
        percentile: float = 95.0,
        service_cv: float = 1.0,
    ) -> float:
        """Advance one epoch; returns the p-th percentile latency (ms)."""
        _require_finite("epoch length", epoch_s)
        _require_finite("arrival rate", arrival_rps)
        _require_finite("capacity", capacity_rps)
        _require_finite("service time", service_time_ms)
        if epoch_s <= 0:
            raise ModelError(f"epoch length must be positive: {epoch_s}")
        if arrival_rps < 0:
            raise ModelError(f"arrival rate cannot be negative: {arrival_rps}")
        if capacity_rps <= 0:
            # Completely starved: nothing drains, everything queues.
            self.backlog_requests += arrival_rps * epoch_s
            return MAX_LATENCY_MS

        net_rps = arrival_rps - capacity_rps
        backlog_start = self.backlog_requests
        backlog_limit = capacity_rps * self.backlog_cap_s
        self.backlog_requests = min(
            backlog_limit, max(0.0, backlog_start + net_rps * epoch_s)
        )

        rho = arrival_rps / capacity_rps
        negligible_backlog = backlog_start * 1e3 / capacity_rps < 1.0  # < 1 ms
        if negligible_backlog and rho < STATIONARY_RHO_LIMIT:
            return percentile_sojourn_ms(
                arrival_rps,
                capacity_rps,
                servers,
                service_time_ms,
                percentile,
                service_cv,
            )

        # Fluid regime: a request arriving at time t waits for the backlog
        # in front of it. The p-th percentile across the epoch's (uniform)
        # arrivals sits at t = p·T when the backlog is growing and at
        # t = (1−p)·T when it is draining.
        quantile_time = (
            (percentile / 100.0) * epoch_s
            if net_rps >= 0
            else (1.0 - percentile / 100.0) * epoch_s
        )
        backlog_at_quantile = min(
            backlog_limit, max(0.0, backlog_start + net_rps * quantile_time)
        )
        fluid_wait_ms = backlog_at_quantile * 1e3 / capacity_rps

        # Baseline service (+ mild queueing) latency on top of the drain.
        base_arrival = min(arrival_rps, 0.9 * capacity_rps)
        base_ms = percentile_sojourn_ms(
            base_arrival, capacity_rps, servers, service_time_ms, percentile, service_cv
        )
        return min(MAX_LATENCY_MS, fluid_wait_ms + base_ms)

    def reset(self) -> None:
        self.backlog_requests = 0.0
