"""Miss-ratio curve re-export plus fitting helpers.

The curve type itself lives with the LLC model in
:mod:`repro.server.llc`; this module adds the calibration helper used by
the workload catalog to derive curve parameters from a target "cache
sensitivity" description.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.server.llc import MissRatioCurve

__all__ = ["MissRatioCurve", "curve_from_sensitivity"]


def curve_from_sensitivity(
    miss_at_full: float,
    miss_at_one_way: float,
    full_ways: float,
) -> MissRatioCurve:
    """Fit an exponential miss-ratio curve through two anchor points.

    Parameters
    ----------
    miss_at_full:
        Miss ratio with the entire LLC (``full_ways`` ways).
    miss_at_one_way:
        Miss ratio when squeezed to a single way.
    full_ways:
        The way count at which ``miss_at_full`` was observed.

    The fitted curve satisfies ``mr(1) = miss_at_one_way`` approximately and
    ``mr(full_ways) ≈ miss_at_full`` (the floor is placed slightly below
    ``miss_at_full`` so the curve still improves marginally past the
    calibration point, as real MRCs do).
    """
    if not 0 < miss_at_full <= miss_at_one_way <= 1:
        raise ConfigurationError(
            "need 0 < miss_at_full <= miss_at_one_way <= 1, got "
            f"{miss_at_full} and {miss_at_one_way}"
        )
    if full_ways <= 1:
        raise ConfigurationError(f"full_ways must exceed 1, got {full_ways}")
    floor = miss_at_full * 0.9
    ceiling_minus_floor = miss_at_one_way - floor
    if ceiling_minus_floor <= 0:
        return MissRatioCurve.insensitive(miss_at_full)
    # Solve mr(full_ways) = miss_at_full for the decay constant.
    ratio = (miss_at_full - floor) / ceiling_minus_floor
    scale = (full_ways - 1.0) / max(1e-9, -math.log(max(1e-12, ratio)))
    ceiling = floor + ceiling_minus_floor * math.exp(1.0 / scale)
    return MissRatioCurve(
        ceiling=min(1.0, ceiling), floor=floor, scale_ways=scale
    )
