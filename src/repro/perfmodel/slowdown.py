"""Composition of core/cache/bandwidth effects into service rates.

The substrate needs one scalar per application per epoch: how fast does a
unit of work complete given the application's *effective* resources? We use
a two-phase work model: a fraction of each request (or instruction window)
is compute-bound and scales only with core speed; the remaining
memory-bound fraction scales with the LLC miss ratio and the memory access
latency (bandwidth stretch).

Calibration convention: an application's ``base`` rate is measured at a
*reference* configuration — running alone with ``reference_ways`` of LLC
and uncontended memory. :func:`memory_time_stretch` then answers "how much
longer does the same work take at this configuration?".
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.server.llc import MissRatioCurve


def memory_time_stretch(
    curve: MissRatioCurve,
    effective_ways: float,
    reference_ways: float,
    memory_fraction: float,
    bandwidth_stretch: float = 1.0,
) -> float:
    """Execution-time multiplier relative to the reference configuration.

    Parameters
    ----------
    curve:
        The application's miss-ratio curve.
    effective_ways:
        LLC ways the application effectively occupies now.
    reference_ways:
        Ways at which the application's base rate was calibrated
        (typically the full LLC, solo).
    memory_fraction:
        Fraction of execution time spent waiting on memory at the
        reference configuration, in [0, 1).
    bandwidth_stretch:
        Memory-access latency multiplier from channel contention (≥ 1).

    Returns
    -------
    float
        ``(1 − m) + m · (mr(w)/mr(w_ref)) · stretch`` — 1.0 exactly at the
        reference configuration, larger when cache shrinks or bandwidth
        saturates.
    """
    if not 0.0 <= memory_fraction < 1.0:
        raise ModelError(f"memory fraction must be in [0, 1), got {memory_fraction}")
    if bandwidth_stretch < 1.0:
        raise ModelError(f"bandwidth stretch must be ≥ 1, got {bandwidth_stretch}")
    if reference_ways <= 0:
        raise ModelError(f"reference ways must be positive, got {reference_ways}")
    reference_miss = curve.miss_ratio(reference_ways)
    if reference_miss <= 0:
        # A perfectly cache-resident application has no memory-bound phase.
        return 1.0
    miss_scaling = curve.miss_ratio(effective_ways) / reference_miss
    return (1.0 - memory_fraction) + memory_fraction * miss_scaling * bandwidth_stretch


def service_rate_per_core(
    base_rate_rps: float,
    curve: MissRatioCurve,
    effective_ways: float,
    reference_ways: float,
    memory_fraction: float,
    bandwidth_stretch: float = 1.0,
    transient_penalty: float = 1.0,
) -> float:
    """Per-core request completion rate at the current configuration.

    ``base_rate_rps`` is the per-core rate at the reference configuration;
    the result divides it by the execution-time stretch and an optional
    transient penalty (cache warm-up / context-switch overhead in the epoch
    following a re-allocation).
    """
    if base_rate_rps <= 0:
        raise ModelError(f"base rate must be positive, got {base_rate_rps}")
    if transient_penalty < 1.0:
        raise ModelError(f"transient penalty must be ≥ 1, got {transient_penalty}")
    stretch = memory_time_stretch(
        curve, effective_ways, reference_ways, memory_fraction, bandwidth_stretch
    )
    return base_rate_rps / (stretch * transient_penalty)


def instruction_rate(
    base_ips: float,
    curve: MissRatioCurve,
    effective_ways: float,
    reference_ways: float,
    memory_fraction: float,
    bandwidth_stretch: float = 1.0,
    core_fraction: float = 1.0,
) -> float:
    """Aggregate instruction throughput of a best-effort application.

    ``base_ips`` is the solo throughput at the reference configuration with
    all its threads running; ``core_fraction`` scales it by the share of
    needed cores actually granted (time-slicing in a shared pool).
    """
    if base_ips <= 0:
        raise ModelError(f"base instruction rate must be positive, got {base_ips}")
    if not 0.0 <= core_fraction <= 1.0:
        raise ModelError(f"core fraction must be in [0, 1], got {core_fraction}")
    stretch = memory_time_stretch(
        curve, effective_ways, reference_ways, memory_fraction, bandwidth_stretch
    )
    return base_ips * core_fraction / stretch
