"""Parallel experiment-execution layer (see :mod:`repro.parallel.runner`)."""

from repro.parallel.runner import (
    JOBS_ENV_VAR,
    ON_ERROR_MODES,
    BatchReport,
    ParallelRunError,
    PointFailure,
    RunGrid,
    RunPoint,
    backoff_s,
    default_jobs,
    resolve_jobs,
    run_many,
    run_with_recovery,
    set_default_jobs,
)

__all__ = [
    "BatchReport",
    "JOBS_ENV_VAR",
    "ON_ERROR_MODES",
    "ParallelRunError",
    "PointFailure",
    "RunGrid",
    "RunPoint",
    "backoff_s",
    "default_jobs",
    "resolve_jobs",
    "run_many",
    "run_with_recovery",
    "set_default_jobs",
]
