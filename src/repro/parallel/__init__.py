"""Parallel experiment-execution layer (see :mod:`repro.parallel.runner`)."""

from repro.parallel.runner import (
    JOBS_ENV_VAR,
    ParallelRunError,
    RunGrid,
    RunPoint,
    default_jobs,
    resolve_jobs,
    run_many,
    set_default_jobs,
)

__all__ = [
    "JOBS_ENV_VAR",
    "ParallelRunError",
    "RunGrid",
    "RunPoint",
    "default_jobs",
    "resolve_jobs",
    "run_many",
    "set_default_jobs",
]
