"""Parallel experiment-execution layer (see :mod:`repro.parallel.runner`)."""

from repro.parallel.runner import (
    JOBS_ENV_VAR,
    ON_ERROR_MODES,
    BatchReport,
    ParallelRunError,
    PointFailure,
    RunGrid,
    RunPoint,
    backoff_s,
    chunk_spans,
    default_jobs,
    estimate_point_cost_s,
    resolve_jobs,
    run_many,
    run_with_recovery,
    set_default_jobs,
    shutdown_pool,
)

__all__ = [
    "BatchReport",
    "JOBS_ENV_VAR",
    "ON_ERROR_MODES",
    "ParallelRunError",
    "PointFailure",
    "RunGrid",
    "RunPoint",
    "backoff_s",
    "chunk_spans",
    "default_jobs",
    "estimate_point_cost_s",
    "resolve_jobs",
    "run_many",
    "run_with_recovery",
    "set_default_jobs",
    "shutdown_pool",
]
