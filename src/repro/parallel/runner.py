"""Parallel experiment execution: fan independent runs across processes.

Every paper artefact reduces to a batch of independent
``run_strategy(collocation, strategy, duration, warmup)`` calls — a load
sweep is ``len(loads) × len(strategies)`` of them, the Fig. 10 heatmap is
``loads² × strategies``. This module turns such a batch into
:class:`RunPoint` values and executes them with :func:`run_many`:

* ``jobs > 1`` fans the points across a ``ProcessPoolExecutor``;
* ``jobs = 1`` runs them serially in-process (the deterministic
  fallback — no pool, no pickling);
* results always come back **in submission order**, so callers assemble
  figures exactly as the old nested loops did.

Determinism guarantee
---------------------
A point's outcome is a pure function of its parameters: every random
stream is derived from ``collocation.seed``, and the per-process memo
caches (gamma quantiles, sojourn times, reserve cores) only ever store
pure-function results. Worker processes therefore produce bit-identical
:class:`~repro.cluster.run.RunResult` summaries to the serial path, and
``--jobs 4`` output is byte-identical to ``--jobs 1``.

Worker failures are re-raised in the parent as :class:`ParallelRunError`
with the failing point's parameters attached, chained to the original
exception.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult, run_collocation
from repro.errors import ConfigurationError, ReproError
from repro.obs.events import CollectingTracer, TraceEvent, Tracer
from repro.obs.metrics import MetricsRegistry

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Process-wide default set by the CLI's ``--jobs`` flag (``None`` defers
#: to the environment variable, then to ``os.cpu_count()``).
_default_jobs: Optional[int] = None


def _validate_jobs(jobs: int, origin: str) -> int:
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(
            f"worker count from {origin} must be a positive integer, got {jobs!r}"
        )
    return jobs


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` clears it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _validate_jobs(jobs, "set_default_jobs")


def default_jobs() -> Optional[int]:
    """The process-wide default worker count, if one has been set."""
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit → default → $REPRO_JOBS → cpu_count."""
    if jobs is not None:
        return _validate_jobs(jobs, "argument")
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
        return _validate_jobs(parsed, JOBS_ENV_VAR)
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class RunPoint:
    """One independent experiment point: a mix, a strategy, a duration.

    ``warmup_s=None`` defers to :func:`repro.cluster.run.run_collocation`'s
    default (20% of the duration). ``tag`` is an opaque correlation key the
    caller can use to map results back to grid coordinates.
    """

    collocation: Collocation
    strategy: str
    duration_s: float = 120.0
    warmup_s: Optional[float] = None
    tag: Optional[Hashable] = None

    def describe(self) -> str:
        """Human-readable parameter summary (used in error messages)."""
        lc = ",".join(m.name for m in self.collocation.lc)
        be = ",".join(m.name for m in self.collocation.be)
        warmup = "default" if self.warmup_s is None else f"{self.warmup_s}s"
        tag = "" if self.tag is None else f" tag={self.tag!r}"
        return (
            f"strategy={self.strategy} lc=[{lc}] be=[{be}] "
            f"duration={self.duration_s}s warmup={warmup} "
            f"seed={self.collocation.seed}{tag}"
        )


class ParallelRunError(ReproError):
    """A run point failed; carries the point so callers can identify it."""

    def __init__(self, index: int, point: RunPoint, cause: BaseException) -> None:
        super().__init__(
            f"run point #{index} ({point.describe()}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.point = point


def _execute_point(point: RunPoint) -> RunResult:
    """Worker entry point (module-level so it pickles for the pool)."""
    # Imported lazily: experiments.common builds its run helpers on top of
    # this module, so a top-level import would be circular.
    from repro.experiments.common import STRATEGY_FACTORIES

    scheduler = STRATEGY_FACTORIES[point.strategy]()
    return run_collocation(
        point.collocation, scheduler, point.duration_s, point.warmup_s
    )


def _execute_point_instrumented(
    point: RunPoint, want_trace: bool, want_metrics: bool
) -> Tuple[RunResult, List[TraceEvent], Optional[MetricsRegistry]]:
    """Worker entry point with per-point observability.

    The worker collects its own events and metrics locally; the parent
    replays/merges them in submission order, which is what makes a
    ``--jobs 4`` trace byte-identical to the serial one.
    """
    from repro.experiments.common import STRATEGY_FACTORIES

    scheduler = STRATEGY_FACTORIES[point.strategy]()
    collector = CollectingTracer() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    result = run_collocation(
        point.collocation,
        scheduler,
        point.duration_s,
        point.warmup_s,
        tracer=collector,
        metrics=registry,
    )
    events = collector.events if collector is not None else []
    return result, events, registry


def metrics_prefix(index: int, point: RunPoint, batch_size: int) -> str:
    """The metric-name prefix for point ``index`` of a ``run_many`` batch.

    A single-point batch keeps bare names (so ``run_many`` over one point
    matches a direct :func:`~repro.cluster.run.run_collocation` call); a
    multi-point batch namespaces each point as ``run<index>.<strategy>/``.
    """
    if batch_size == 1:
        return ""
    return f"run{index:03d}.{point.strategy}/"


def _known_strategies() -> Iterable[str]:
    from repro.experiments.common import STRATEGY_FACTORIES

    return STRATEGY_FACTORIES


def run_many(
    points: Iterable[RunPoint],
    jobs: Optional[int] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[RunResult]:
    """Execute every point, returning results in submission order.

    ``jobs=1`` (or a single point) runs serially in-process; anything
    larger uses a ``ProcessPoolExecutor`` with ``min(jobs, len(points))``
    workers. The first failing point aborts the batch with a
    :class:`ParallelRunError`; points still pending are cancelled.

    When ``tracer`` or ``metrics`` is given, every point runs with its own
    collecting tracer and registry (inside the worker process, when
    pooled); the parent then replays each point's events to ``tracer`` and
    merges its registry into ``metrics`` **in submission order**, so the
    observed stream is identical for every ``jobs`` setting. Multi-point
    batches namespace merged metrics with :func:`metrics_prefix`.
    """
    batch = list(points)
    known = _known_strategies()
    for index, point in enumerate(batch):
        if not isinstance(point, RunPoint):
            raise ConfigurationError(
                f"run_many expects RunPoint values, got {type(point).__name__} "
                f"at index {index}"
            )
        if point.strategy not in known:
            raise ConfigurationError(
                f"unknown strategy {point.strategy!r} at index {index}; "
                f"known strategies: {sorted(known)}"
            )
    if not batch:
        return []

    instrumented = tracer is not None or metrics is not None
    want_trace = tracer is not None
    want_metrics = metrics is not None

    workers = min(resolve_jobs(jobs), len(batch))
    if workers == 1:
        outcomes = []
        for index, point in enumerate(batch):
            try:
                if instrumented:
                    outcomes.append(
                        _execute_point_instrumented(point, want_trace, want_metrics)
                    )
                else:
                    outcomes.append(_execute_point(point))
            except Exception as exc:
                raise ParallelRunError(index, point, exc) from exc
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if instrumented:
                futures = [
                    pool.submit(
                        _execute_point_instrumented, point, want_trace, want_metrics
                    )
                    for point in batch
                ]
            else:
                futures = [pool.submit(_execute_point, point) for point in batch]
            outcomes = []
            for index, (point, future) in enumerate(zip(batch, futures)):
                try:
                    outcomes.append(future.result())
                except Exception as exc:
                    for pending in futures[index + 1 :]:
                        pending.cancel()
                    raise ParallelRunError(index, point, exc) from exc

    if not instrumented:
        return outcomes

    results: List[RunResult] = []
    for index, (point, outcome) in enumerate(zip(batch, outcomes)):
        result, events, registry = outcome
        if tracer is not None:
            for event in events:
                tracer.emit(event)
        if metrics is not None and registry is not None:
            metrics.merge(registry, prefix=metrics_prefix(index, point, len(batch)))
        results.append(result)
    return results


@dataclass
class RunGrid:
    """Builder for a batch of run points executed together.

    Accumulate points with :meth:`add` (each returns its index), then call
    :meth:`run` for results in insertion order, or :meth:`run_tagged` for
    ``(tag, result)`` pairs — the natural shape for heatmap grids.
    """

    jobs: Optional[int] = None
    points: List[RunPoint] = field(default_factory=list)
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    def add(
        self,
        collocation: Collocation,
        strategy: str,
        duration_s: float = 120.0,
        warmup_s: Optional[float] = None,
        tag: Optional[Hashable] = None,
    ) -> int:
        self.points.append(
            RunPoint(
                collocation=collocation,
                strategy=strategy,
                duration_s=duration_s,
                warmup_s=warmup_s,
                tag=tag,
            )
        )
        return len(self.points) - 1

    def __len__(self) -> int:
        return len(self.points)

    def run(self) -> List[RunResult]:
        return run_many(
            self.points, jobs=self.jobs, tracer=self.tracer, metrics=self.metrics
        )

    def run_tagged(self) -> List[Tuple[Optional[Hashable], RunResult]]:
        return [(point.tag, result) for point, result in zip(self.points, self.run())]
