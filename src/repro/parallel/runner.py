"""Parallel experiment execution: fan independent runs across processes.

Every paper artefact reduces to a batch of independent
``run_strategy(collocation, strategy, duration, warmup)`` calls — a load
sweep is ``len(loads) × len(strategies)`` of them, the Fig. 10 heatmap is
``loads² × strategies``. This module turns such a batch into
:class:`RunPoint` values and executes them with :func:`run_many`:

* ``jobs > 1`` fans the points across a ``ProcessPoolExecutor``;
* ``jobs = 1`` runs them serially in-process (the deterministic
  fallback — no pool, no pickling);
* results always come back **in submission order**, so callers assemble
  figures exactly as the old nested loops did.

Determinism guarantee
---------------------
A point's outcome is a pure function of its parameters: every random
stream is derived from ``collocation.seed``, every fault effect from the
simulated clock, and the per-process memo caches (gamma quantiles,
sojourn times, reserve cores) only ever store pure-function results.
Worker processes therefore produce bit-identical
:class:`~repro.cluster.run.RunResult` summaries to the serial path, and
``--jobs 4`` output is byte-identical to ``--jobs 1``. Retry backoff is
attempt-indexed (``base · 2^attempt``) — no wall-clock randomness.

Failure handling
----------------
``on_error="raise"`` (the default) aborts the batch on the first failing
point with a :class:`ParallelRunError` that carries the failing point's
parameters **and** the results completed before the failure
(``error.completed``), so callers can salvage finished work.
``on_error="salvage"`` never raises for worker failures: it returns a
:class:`BatchReport` with results for every succeeding point and a
structured :class:`PointFailure` record per failing one. Both modes
honour ``timeout_s`` (per-point, enforced via the pool) and ``retries``
with deterministic exponential backoff.

Dispatch architecture
---------------------
The pool path is built for sweeps of many small points:

* **Warm workers** — one ``ProcessPoolExecutor`` is created lazily and
  *reused* across every ``run_many``/``run_with_recovery`` call with the
  same worker count, with an initializer that pre-imports the strategy
  factories and workload calibration so the pool spin-up and module
  loading are paid once per process, not once per batch.
* **Chunked batches** — points are submitted as contiguous chunks (a few
  per worker) instead of one future each, so ``fn`` and the dispatch
  round-trip are pickled per *chunk*. Results are re-assembled by index,
  preserving submission-ordered, byte-identical trace replay.
* **Cheap-batch heuristic** — :func:`run_many` estimates a batch's
  simulation work from its points' epoch counts and stays on the serial
  in-process path when the whole batch is cheaper than the dispatch
  overhead; serial and pooled paths are bit-identical, so this is purely
  a scheduling decision.
* **Stuck-worker recycling** — a per-point timeout cannot kill a running
  worker, so after a timeout the pool is *recycled* (abandoned workers
  terminated, fresh pool built) before anything is resubmitted; retries
  therefore always land on live workers. An item whose original worker
  was abandoned mid-run may execute twice — acceptable for the pure
  simulation workloads this module exists for.
"""

from __future__ import annotations

import atexit
import functools
import math
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.check.invariants import CheckConfig
from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult, run_collocation
from repro.errors import ConfigurationError, ReproError
from repro.faults.plan import FaultPlan
from repro.obs.events import CollectingTracer, TraceEvent, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import WindowConfig

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: The failure-handling modes :func:`run_many` understands.
ON_ERROR_MODES = ("raise", "salvage")

#: Process-wide default set by the CLI's ``--jobs`` flag (``None`` defers
#: to the environment variable, then to ``os.cpu_count()``).
_default_jobs: Optional[int] = None

#: Chunks submitted per worker: small enough to amortise dispatch, large
#: enough that a straggler chunk cannot idle the rest of the pool.
CHUNKS_PER_WORKER = 4

#: Rough wall-clock cost of one simulated epoch (seconds), calibrated
#: from ``benchmarks/perf/BENCH_sweep.json`` (a 180-epoch run costs
#: ~60 ms warm). Only used to *rank* batches against the dispatch
#: overhead, so an order-of-magnitude estimate is plenty.
EPOCH_COST_ESTIMATE_S = 3e-4

#: Batches whose estimated total work falls below this stay serial: the
#: pool round-trip (pickling, queue hops, result marshalling) costs more
#: than it saves. Serial and pooled execution are bit-identical, so this
#: is purely a scheduling decision.
MIN_PARALLEL_WORK_S = 0.25


def _warm_worker() -> None:
    """Pool initializer: preload shared read-only state in each worker.

    Importing the strategy factories pulls in the workload catalog and
    calibration tables, so the first chunk a worker receives does not pay
    module-import latency, and none of that state rides along in every
    pickled point.
    """
    from repro.experiments import common  # noqa: F401


class _WarmPoolManager:
    """A process pool created once and reused across batches.

    ``acquire`` hands out the live pool (rebuilding it when the worker
    count changes or the pool broke); ``recycle`` abandons a pool whose
    worker may be stuck — per-point timeouts cannot preempt a running
    task — terminating its processes best-effort and building a fresh
    pool so retries land on live workers.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0

    def acquire(self, workers: int) -> ProcessPoolExecutor:
        pool = self._pool
        if (
            pool is not None
            and self._workers == workers
            and not getattr(pool, "_broken", False)
        ):
            return pool
        self.shutdown(wait=False)
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_warm_worker
        )
        self._workers = workers
        return self._pool

    def recycle(self, workers: int) -> ProcessPoolExecutor:
        """Abandon the current pool (stuck/broken workers) and rebuild."""
        self.shutdown(wait=False, terminate=True)
        return self.acquire(workers)

    def shutdown(self, wait: bool = True, terminate: bool = False) -> None:
        pool = self._pool
        self._pool = None
        self._workers = 0
        if pool is None:
            return
        if terminate:
            # A stuck worker never drains its queue, so it is terminated
            # rather than waited for — and then *joined* (with a SIGKILL
            # escalation for workers that catch SIGTERM): tearing the old
            # executor down concurrently with building its replacement is
            # racy, so the abandoned processes must be confirmed dead
            # before this returns. Once they are, waiting on the executor
            # itself is safe and settles its management thread too.
            processes = list(getattr(pool, "_processes", {}).values())
            for process in processes:
                try:
                    process.terminate()
                except Exception:
                    pass
            for process in processes:
                try:
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.kill()
                        process.join(timeout=5.0)
                except Exception:
                    pass
            wait = not any(process.is_alive() for process in processes)
        pool.shutdown(wait=wait, cancel_futures=True)


_pools = _WarmPoolManager()


def shutdown_pool() -> None:
    """Shut down the warm worker pool (it is rebuilt lazily on next use).

    Call after changing process-wide toggles that workers snapshot at
    creation time (cache switches, default jobs): warm workers inherit
    the parent state of the moment the pool was built.
    """
    _pools.shutdown(wait=False, terminate=True)


atexit.register(shutdown_pool)


def _validate_jobs(jobs: int, origin: str) -> int:
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(
            f"worker count from {origin} must be a positive integer, got {jobs!r}"
        )
    return jobs


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` clears it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _validate_jobs(jobs, "set_default_jobs")


def default_jobs() -> Optional[int]:
    """The process-wide default worker count, if one has been set."""
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit → default → $REPRO_JOBS → cpu_count."""
    if jobs is not None:
        return _validate_jobs(jobs, "argument")
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
        return _validate_jobs(parsed, JOBS_ENV_VAR)
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class RunPoint:
    """One independent experiment point: a mix, a strategy, a duration.

    ``warmup_s=None`` defers to :func:`repro.cluster.run.run_collocation`'s
    default (20% of the duration). ``tag`` is an opaque correlation key the
    caller can use to map results back to grid coordinates. ``faults``
    optionally attaches a deterministic
    :class:`~repro.faults.plan.FaultPlan` to the run; ``checks`` arms the
    invariant checker inside the worker (violations travel back on
    :attr:`~repro.cluster.run.RunResult.check_violations`); ``windows``
    arms bounded streaming window aggregation inside the worker (the
    summary travels back on
    :attr:`~repro.cluster.run.RunResult.window_report`, O(keep) sized
    however long the run is).
    """

    collocation: Collocation
    strategy: str
    duration_s: float = 120.0
    warmup_s: Optional[float] = None
    tag: Optional[Hashable] = None
    faults: Optional[FaultPlan] = None
    checks: Optional[CheckConfig] = None
    windows: Optional[WindowConfig] = None

    def describe(self) -> str:
        """Human-readable parameter summary (used in error messages)."""
        lc = ",".join(m.name for m in self.collocation.lc)
        be = ",".join(m.name for m in self.collocation.be)
        warmup = "default" if self.warmup_s is None else f"{self.warmup_s}s"
        tag = "" if self.tag is None else f" tag={self.tag!r}"
        faults = "" if self.faults is None else f" faults={len(self.faults)}"
        checks = "" if self.checks is None else (
            " checks=strict" if self.checks.strict else " checks=warn"
        )
        windows = "" if self.windows is None else (
            f" windows=dt{self.windows.dt_s:g}s×{self.windows.keep}"
        )
        return (
            f"strategy={self.strategy} lc=[{lc}] be=[{be}] "
            f"duration={self.duration_s}s warmup={warmup} "
            f"seed={self.collocation.seed}{tag}{faults}{checks}{windows}"
        )


class ParallelRunError(ReproError):
    """A run point failed; carries the point so callers can identify it.

    ``completed`` maps batch index → :class:`RunResult` for every point
    that finished before the batch aborted, so a long sweep's surviving
    work can be salvaged even in the default ``raise`` mode.
    """

    def __init__(
        self,
        index: int,
        point: RunPoint,
        cause: BaseException,
        completed: Optional[Dict[int, RunResult]] = None,
    ) -> None:
        super().__init__(
            f"run point #{index} ({point.describe()}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.point = point
        self.completed: Dict[int, RunResult] = dict(completed or {})


@dataclass(frozen=True)
class PointFailure:
    """Structured record of one item's final failure in a batch.

    ``attempts`` counts executions including retries; ``timed_out`` marks
    per-point timeouts (the final attempt exceeded ``timeout_s``).
    """

    index: int
    point: Any
    error_type: str
    message: str
    attempts: int = 1
    timed_out: bool = False
    #: The final exception object (excluded from equality/repr).
    error: Optional[BaseException] = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        how = "timed out" if self.timed_out else "failed"
        return (
            f"point #{self.index} {how} after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (the exception object is omitted)."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }


def summarize_failures(
    failures: Sequence["PointFailure"],
) -> List[Dict[str, Any]]:
    """Fold a failure list into JSON-safe dicts (for logs and artefacts).

    The shared report shape behind :meth:`BatchReport.failure_report`
    and the datacenter layer's
    :meth:`~repro.datacenter.shard.ShardReport.failure_report`.
    """
    return [failure.as_dict() for failure in failures]


@dataclass(frozen=True)
class BatchReport:
    """Partial results plus a structured failure report (salvage mode).

    ``results`` aligns with submission order; failed points hold ``None``.
    """

    results: Tuple[Optional[RunResult], ...]
    failures: Tuple[PointFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every point succeeded."""
        return not self.failures

    def completed(self) -> Dict[int, RunResult]:
        """Map batch index → result for every succeeding point."""
        return {
            index: result
            for index, result in enumerate(self.results)
            if result is not None
        }

    def failure_report(self) -> List[Dict[str, Any]]:
        """The failures as JSON-safe dicts (for logs and artefacts)."""
        return summarize_failures(self.failures)


def backoff_s(base_s: float, attempt: int) -> float:
    """Deterministic exponential backoff: ``base_s · 2^attempt``.

    Indexed by the attempt number — no wall-clock randomness, so retry
    schedules are reproducible.
    """
    return base_s * (2.0 ** attempt)


def _failure(
    index: int,
    item: Any,
    error: BaseException,
    attempts: int,
    timed_out: bool = False,
) -> PointFailure:
    """Build the :class:`PointFailure` record for one exhausted item."""
    return PointFailure(
        index=index,
        point=item,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
        timed_out=timed_out,
        error=error,
    )


def run_with_recovery(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
    stop_on_failure: bool = False,
    force_pool: bool = False,
) -> Tuple[List[Optional[Any]], List[PointFailure]]:
    """Execute ``fn(item)`` for every item with bounded retry and timeout.

    The generic engine underneath :func:`run_many`, usable with any
    picklable ``fn``. Returns ``(results, failures)``: ``results`` aligns
    with ``items`` (``None`` where the item ultimately failed), and
    ``failures`` lists one :class:`PointFailure` per exhausted item in
    submission order.

    ``retries`` re-executes a failing item up to that many extra times,
    sleeping :func:`backoff_s` between retry passes. ``timeout_s`` bounds
    each attempt's wall-clock; enforcing it requires a worker process, so
    a timeout forces the pool path even for ``jobs=1`` (the plain serial
    path cannot preempt a running call). A timed-out attempt's worker may
    be stuck, so the warm pool is **recycled** before anything is
    resubmitted — the stuck process is terminated best-effort and the
    retry runs on a fresh worker (an abandoned item may as a result
    execute twice; ``fn`` should be effectively pure).
    ``stop_on_failure`` aborts the batch at the first exhausted item
    (pending work is cancelled; items after the failure stay ``None``).
    ``force_pool`` routes even a one-worker no-timeout batch through the
    warm process pool — the two paths are bit-identical, so this exists
    purely so benchmarks and determinism tests can measure/exercise the
    pool machinery directly.

    Without a timeout, the pool path submits **chunks** of consecutive
    items (a few per worker) to the warm pool and re-assembles results by
    index; failing items are then retried individually in batched retry
    passes. With a timeout, items are submitted one future each so the
    per-item deadline stays enforceable.
    """
    if retries < 0:
        raise ConfigurationError(f"retries cannot be negative: {retries}")
    if retry_backoff_s < 0:
        raise ConfigurationError(
            f"retry backoff cannot be negative: {retry_backoff_s}"
        )
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(f"timeout must be positive: {timeout_s}")
    batch = list(items)
    results: List[Optional[Any]] = [None] * len(batch)
    failures: List[PointFailure] = []
    if not batch:
        return results, failures

    workers = min(resolve_jobs(jobs), len(batch))
    if workers == 1 and timeout_s is None and not force_pool:
        for index, item in enumerate(batch):
            last: Optional[BaseException] = None
            for attempt in range(retries + 1):
                if attempt and retry_backoff_s:
                    time.sleep(backoff_s(retry_backoff_s, attempt - 1))
                try:
                    results[index] = fn(item)
                    last = None
                    break
                except Exception as exc:
                    last = exc
            if last is not None:
                failures.append(_failure(index, item, last, retries + 1))
                if stop_on_failure:
                    break
        return results, failures

    if timeout_s is not None:
        _run_pooled_timeout(
            fn, batch, workers, timeout_s, retries, retry_backoff_s,
            stop_on_failure, results, failures,
        )
    else:
        _run_pooled_chunked(
            fn, batch, workers, retries, retry_backoff_s,
            stop_on_failure, results, failures,
        )
    return results, failures


def chunk_spans(count: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` spans covering ``count`` items.

    Chunk size targets :data:`CHUNKS_PER_WORKER` chunks per worker — big
    enough to amortise pickling ``fn`` and the dispatch round-trip, small
    enough that one slow chunk cannot idle the rest of the pool. A single
    worker has no pool-mates to balance against, so it gets exactly one
    chunk: every extra boundary is a worker idle gap while the executor
    wakes, feeds the next chunk through the call queue and round-trips
    results — measurably several ms each on a busy one-core host.
    """
    if workers <= 1:
        return [(0, count)]
    size = max(1, math.ceil(count / (workers * CHUNKS_PER_WORKER)))
    return [(start, min(start + size, count)) for start in range(0, count, size)]


def _run_chunk(
    fn: Callable[[Any], Any], items: Sequence[Any]
) -> List[Tuple[bool, Any]]:
    """Worker-side chunk executor: one ``(ok, payload)`` pair per item.

    Items run in submission order and failures are captured per item, so
    one bad point never discards its chunk-mates' finished work.
    """
    outcomes: List[Tuple[bool, Any]] = []
    for item in items:
        try:
            outcomes.append((True, fn(item)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


def _run_pooled_chunked(
    fn: Callable[[Any], Any],
    batch: List[Any],
    workers: int,
    retries: int,
    retry_backoff_s: float,
    stop_on_failure: bool,
    results: List[Optional[Any]],
    failures: List[PointFailure],
) -> None:
    """Chunked execution on the warm pool (the no-timeout fast path)."""
    count = len(batch)
    pool = _pools.acquire(workers)
    chunk_futures = [
        (start, stop, pool.submit(_run_chunk, fn, batch[start:stop]))
        for start, stop in chunk_spans(count, workers)
    ]
    errors: Dict[int, BaseException] = {}
    for start, stop, future in chunk_futures:
        try:
            outcomes = future.result()
        except Exception as exc:
            # The chunk died wholesale (broken pool, unpicklable result):
            # every item in it failed with the same cause.
            outcomes = [(False, exc)] * (stop - start)
        for offset, (ok, payload) in enumerate(outcomes):
            if ok:
                results[start + offset] = payload
            else:
                errors[start + offset] = payload

    attempts = {index: 1 for index in errors}
    for retry_pass in range(1, retries + 1):
        if not errors:
            break
        delay = backoff_s(retry_backoff_s, retry_pass - 1)
        if delay:
            time.sleep(delay)
        pool = _pools.acquire(workers)  # rebuilt automatically if broken
        retry_futures = [
            (index, pool.submit(fn, batch[index])) for index in sorted(errors)
        ]
        errors = {}
        for index, future in retry_futures:
            attempts[index] += 1
            try:
                results[index] = future.result()
            except Exception as exc:
                errors[index] = exc

    for index in sorted(errors):
        failures.append(_failure(index, batch[index], errors[index], attempts[index]))
    if stop_on_failure and failures:
        # Match the serial path's contract: nothing after the first
        # exhausted failure is reported, even if its chunk already ran.
        del failures[1:]
        for index in range(failures[0].index + 1, count):
            results[index] = None


def _run_pooled_timeout(
    fn: Callable[[Any], Any],
    batch: List[Any],
    workers: int,
    timeout_s: float,
    retries: int,
    retry_backoff_s: float,
    stop_on_failure: bool,
    results: List[Optional[Any]],
    failures: List[PointFailure],
) -> None:
    """Per-item futures with a deadline; recycles the pool on timeouts."""
    count = len(batch)
    pool = _pools.acquire(workers)
    pending = {index: pool.submit(fn, batch[index]) for index in range(count)}

    def resubmit_not_done(from_index: int) -> None:
        # After a recycle: futures that already completed keep their
        # results; everything else belonged to the abandoned pool and is
        # resubmitted to the fresh one. "Completed" must be checked
        # against the *outcome*, not just done(): the abandoned
        # executor's teardown fails every future still pending there
        # with BrokenProcessPool — those are poisoned, not finished,
        # and keeping them would fail the whole tail of the batch.
        for j in range(from_index, count):
            future = pending[j]
            if future.done() and not future.cancelled():
                error = future.exception()
                if error is None or not isinstance(error, BrokenExecutor):
                    continue  # a real result or a genuine work failure
            pending[j] = pool.submit(fn, batch[j])

    for index, item in enumerate(batch):
        failure: Optional[PointFailure] = None
        for attempt in range(retries + 1):
            if attempt:
                delay = backoff_s(retry_backoff_s, attempt - 1)
                if delay:
                    time.sleep(delay)
                pending[index] = pool.submit(fn, item)
            try:
                results[index] = pending[index].result(timeout=timeout_s)
                failure = None
                break
            except FuturesTimeoutError as exc:
                failure = _failure(index, item, exc, attempt + 1, timed_out=True)
                # The worker behind this future may be stuck; a retry on
                # the same pool could queue behind it forever. Recycle,
                # then move the not-yet-done tail onto live workers.
                pool = _pools.recycle(workers)
                resubmit_not_done(index + 1)
            except BrokenExecutor as exc:
                failure = _failure(index, item, exc, attempt + 1)
                pool = _pools.recycle(workers)
                resubmit_not_done(index + 1)
            except Exception as exc:
                failure = _failure(index, item, exc, attempt + 1)
        if failure is not None:
            failures.append(failure)
            if stop_on_failure:
                for j in range(index + 1, count):
                    pending[j].cancel()
                return


def _execute_point(point: RunPoint) -> RunResult:
    """Worker entry point (module-level so it pickles for the pool)."""
    # Imported lazily: experiments.common builds its run helpers on top of
    # this module, so a top-level import would be circular.
    from repro.experiments.common import strategy_factory

    scheduler = strategy_factory(point.strategy)()
    return run_collocation(
        point.collocation,
        scheduler,
        point.duration_s,
        point.warmup_s,
        faults=point.faults,
        checks=point.checks,
        windows=point.windows,
    )


def _execute_point_instrumented(
    point: RunPoint, want_trace: bool, want_metrics: bool
) -> Tuple[RunResult, List[TraceEvent], Optional[MetricsRegistry]]:
    """Worker entry point with per-point observability.

    The worker collects its own events and metrics locally; the parent
    replays/merges them in submission order, which is what makes a
    ``--jobs 4`` trace byte-identical to the serial one.
    """
    from repro.experiments.common import strategy_factory

    scheduler = strategy_factory(point.strategy)()
    collector = CollectingTracer() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    result = run_collocation(
        point.collocation,
        scheduler,
        point.duration_s,
        point.warmup_s,
        tracer=collector,
        metrics=registry,
        faults=point.faults,
        checks=point.checks,
        windows=point.windows,
    )
    events = collector.events if collector is not None else []
    return result, events, registry


def estimate_point_cost_s(point: RunPoint) -> float:
    """Estimated wall-clock cost of one point (seconds, order of magnitude).

    A run's work is proportional to its epoch count; the constant comes
    from the committed bench numbers. Used only to decide whether a batch
    is worth dispatching to worker processes at all.
    """
    epochs = point.duration_s / point.collocation.epoch_s
    return max(0.0, epochs) * EPOCH_COST_ESTIMATE_S


def metrics_prefix(index: int, point: RunPoint, batch_size: int) -> str:
    """The metric-name prefix for point ``index`` of a ``run_many`` batch.

    A single-point batch keeps bare names (so ``run_many`` over one point
    matches a direct :func:`~repro.cluster.run.run_collocation` call); a
    multi-point batch namespaces each point as ``run<index>.<strategy>/``.
    """
    if batch_size == 1:
        return ""
    return f"run{index:03d}.{point.strategy}/"


def _known_strategies() -> Callable[[str], bool]:
    from repro.experiments.common import known_strategy

    return known_strategy


def run_many(
    points: Iterable[RunPoint],
    jobs: Optional[int] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    on_error: str = "raise",
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
    force_pool: bool = False,
    windows: Optional[WindowConfig] = None,
):
    """Execute every point, returning results in submission order.

    ``jobs=1`` (or a single point) runs serially in-process; anything
    larger uses a ``ProcessPoolExecutor`` with ``min(jobs, len(points))``
    workers.

    ``on_error="raise"`` (default) aborts at the first failing point with
    a :class:`ParallelRunError` carrying the already-completed results in
    its ``completed`` attribute, and returns a plain ``List[RunResult]``
    when everything succeeds. ``on_error="salvage"`` always returns a
    :class:`BatchReport`: results for every succeeding point plus a
    structured failure report — one worker crashing or timing out no
    longer discards the rest of the sweep. ``timeout_s``, ``retries`` and
    ``retry_backoff_s`` follow :func:`run_with_recovery`.

    When ``tracer`` or ``metrics`` is given, every point runs with its own
    collecting tracer and registry (inside the worker process, when
    pooled); the parent then replays each point's events to ``tracer`` and
    merges its registry into ``metrics`` **in submission order**, so the
    observed stream is identical for every ``jobs`` setting. Multi-point
    batches namespace merged metrics with :func:`metrics_prefix`; failed
    points contribute no events or metrics.

    ``windows`` applies a batch-wide
    :class:`~repro.obs.windows.WindowConfig` to every point that does not
    carry its own: each worker folds its run's events into a bounded
    window summary locally (never shipping the raw event stream), and the
    summary returns on each result's
    :attr:`~repro.cluster.run.RunResult.window_report`. Window folding is
    an exact merge of per-event integer counts, so a point's summary is
    byte-identical at any ``jobs`` setting; merge summaries across points
    with :func:`~repro.obs.windows.merge_window_summaries` (submission
    order — though the merge is grouping-independent by construction).

    Batches whose estimated work (:func:`estimate_point_cost_s`) falls
    below :data:`MIN_PARALLEL_WORK_S` stay on the serial in-process path
    regardless of ``jobs`` — dispatch overhead would dominate, and the
    two paths produce bit-identical results anyway. ``force_pool``
    overrides both that heuristic and the ``jobs=1`` serial shortcut so
    the pool path itself can be benchmarked and tested.
    """
    if on_error not in ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    batch = list(points)
    known = _known_strategies()
    for index, point in enumerate(batch):
        if not isinstance(point, RunPoint):
            raise ConfigurationError(
                f"run_many expects RunPoint values, got {type(point).__name__} "
                f"at index {index}"
            )
        if not known(point.strategy):
            raise ConfigurationError(
                f"unknown strategy {point.strategy!r} at index {index}; "
                "known strategies: base names from STRATEGY_FACTORIES or "
                "composite 'switchback:<a>:<b>:<epochs>' names"
            )
    if not batch:
        return [] if on_error == "raise" else BatchReport(results=())
    if windows is not None:
        config = WindowConfig.of(windows)
        batch = [
            point if point.windows is not None else replace(point, windows=config)
            for point in batch
        ]

    instrumented = tracer is not None or metrics is not None
    want_trace = tracer is not None
    want_metrics = metrics is not None
    if instrumented:
        fn = functools.partial(
            _execute_point_instrumented,
            want_trace=want_trace,
            want_metrics=want_metrics,
        )
    else:
        fn = _execute_point

    effective_jobs = jobs
    if not force_pool and timeout_s is None and resolve_jobs(jobs) > 1:
        estimated_work_s = sum(estimate_point_cost_s(point) for point in batch)
        if estimated_work_s < MIN_PARALLEL_WORK_S:
            effective_jobs = 1

    outcomes, failures = run_with_recovery(
        fn,
        batch,
        jobs=effective_jobs,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        stop_on_failure=(on_error == "raise"),
        force_pool=force_pool,
    )

    results: List[Optional[RunResult]] = []
    for index, (point, outcome) in enumerate(zip(batch, outcomes)):
        if outcome is None:
            results.append(None)
            continue
        if instrumented:
            result, events, registry = outcome
            if tracer is not None:
                for event in events:
                    tracer.emit(event)
            if metrics is not None and registry is not None:
                metrics.merge(
                    registry, prefix=metrics_prefix(index, point, len(batch))
                )
        else:
            result = outcome
        results.append(result)

    if on_error == "salvage":
        return BatchReport(results=tuple(results), failures=tuple(failures))
    if failures:
        first = failures[0]
        completed = {
            index: result for index, result in enumerate(results) if result is not None
        }
        raise ParallelRunError(
            first.index, batch[first.index], first.error, completed=completed
        ) from first.error
    return results


@dataclass
class RunGrid:
    """Builder for a batch of run points executed together.

    Accumulate points with :meth:`add` (each returns its index), then call
    :meth:`run` for results in insertion order, or :meth:`run_tagged` for
    ``(tag, result)`` pairs — the natural shape for heatmap grids.
    ``timeout_s``/``retries``/``retry_backoff_s`` and ``on_error`` forward
    to :func:`run_many`.
    """

    jobs: Optional[int] = None
    points: List[RunPoint] = field(default_factory=list)
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    on_error: str = "raise"
    timeout_s: Optional[float] = None
    retries: int = 0
    retry_backoff_s: float = 0.0
    windows: Optional[WindowConfig] = None

    def add(
        self,
        collocation: Collocation,
        strategy: str,
        duration_s: float = 120.0,
        warmup_s: Optional[float] = None,
        tag: Optional[Hashable] = None,
        faults: Optional[FaultPlan] = None,
        checks: Optional[CheckConfig] = None,
        windows: Optional[WindowConfig] = None,
    ) -> int:
        """Append one point; returns its batch index."""
        self.points.append(
            RunPoint(
                collocation=collocation,
                strategy=strategy,
                duration_s=duration_s,
                warmup_s=warmup_s,
                tag=tag,
                faults=faults,
                checks=checks,
                windows=windows,
            )
        )
        return len(self.points) - 1

    def __len__(self) -> int:
        return len(self.points)

    def run(self):
        """Execute the batch (see :func:`run_many` for the return shape)."""
        return run_many(
            self.points,
            jobs=self.jobs,
            tracer=self.tracer,
            metrics=self.metrics,
            on_error=self.on_error,
            timeout_s=self.timeout_s,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            windows=self.windows,
        )

    def run_tagged(self) -> List[Tuple[Optional[Hashable], RunResult]]:
        """``(tag, result)`` pairs in insertion order (``raise`` mode only)."""
        if self.on_error != "raise":
            raise ConfigurationError(
                "run_tagged() needs on_error='raise'; use run() and "
                "BatchReport for salvage semantics"
            )
        return [(point.tag, result) for point, result in zip(self.points, self.run())]
