"""Parallel experiment execution: fan independent runs across processes.

Every paper artefact reduces to a batch of independent
``run_strategy(collocation, strategy, duration, warmup)`` calls — a load
sweep is ``len(loads) × len(strategies)`` of them, the Fig. 10 heatmap is
``loads² × strategies``. This module turns such a batch into
:class:`RunPoint` values and executes them with :func:`run_many`:

* ``jobs > 1`` fans the points across a ``ProcessPoolExecutor``;
* ``jobs = 1`` runs them serially in-process (the deterministic
  fallback — no pool, no pickling);
* results always come back **in submission order**, so callers assemble
  figures exactly as the old nested loops did.

Determinism guarantee
---------------------
A point's outcome is a pure function of its parameters: every random
stream is derived from ``collocation.seed``, every fault effect from the
simulated clock, and the per-process memo caches (gamma quantiles,
sojourn times, reserve cores) only ever store pure-function results.
Worker processes therefore produce bit-identical
:class:`~repro.cluster.run.RunResult` summaries to the serial path, and
``--jobs 4`` output is byte-identical to ``--jobs 1``. Retry backoff is
attempt-indexed (``base · 2^attempt``) — no wall-clock randomness.

Failure handling
----------------
``on_error="raise"`` (the default) aborts the batch on the first failing
point with a :class:`ParallelRunError` that carries the failing point's
parameters **and** the results completed before the failure
(``error.completed``), so callers can salvage finished work.
``on_error="salvage"`` never raises for worker failures: it returns a
:class:`BatchReport` with results for every succeeding point and a
structured :class:`PointFailure` record per failing one. Both modes
honour ``timeout_s`` (per-point, enforced via the pool) and ``retries``
with deterministic exponential backoff.
"""

from __future__ import annotations

import functools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.check.invariants import CheckConfig
from repro.cluster.collocation import Collocation
from repro.cluster.run import RunResult, run_collocation
from repro.errors import ConfigurationError, ReproError
from repro.faults.plan import FaultPlan
from repro.obs.events import CollectingTracer, TraceEvent, Tracer
from repro.obs.metrics import MetricsRegistry

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: The failure-handling modes :func:`run_many` understands.
ON_ERROR_MODES = ("raise", "salvage")

#: Process-wide default set by the CLI's ``--jobs`` flag (``None`` defers
#: to the environment variable, then to ``os.cpu_count()``).
_default_jobs: Optional[int] = None


def _validate_jobs(jobs: int, origin: str) -> int:
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(
            f"worker count from {origin} must be a positive integer, got {jobs!r}"
        )
    return jobs


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` clears it)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _validate_jobs(jobs, "set_default_jobs")


def default_jobs() -> Optional[int]:
    """The process-wide default worker count, if one has been set."""
    return _default_jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit → default → $REPRO_JOBS → cpu_count."""
    if jobs is not None:
        return _validate_jobs(jobs, "argument")
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
        return _validate_jobs(parsed, JOBS_ENV_VAR)
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class RunPoint:
    """One independent experiment point: a mix, a strategy, a duration.

    ``warmup_s=None`` defers to :func:`repro.cluster.run.run_collocation`'s
    default (20% of the duration). ``tag`` is an opaque correlation key the
    caller can use to map results back to grid coordinates. ``faults``
    optionally attaches a deterministic
    :class:`~repro.faults.plan.FaultPlan` to the run; ``checks`` arms the
    invariant checker inside the worker (violations travel back on
    :attr:`~repro.cluster.run.RunResult.check_violations`).
    """

    collocation: Collocation
    strategy: str
    duration_s: float = 120.0
    warmup_s: Optional[float] = None
    tag: Optional[Hashable] = None
    faults: Optional[FaultPlan] = None
    checks: Optional[CheckConfig] = None

    def describe(self) -> str:
        """Human-readable parameter summary (used in error messages)."""
        lc = ",".join(m.name for m in self.collocation.lc)
        be = ",".join(m.name for m in self.collocation.be)
        warmup = "default" if self.warmup_s is None else f"{self.warmup_s}s"
        tag = "" if self.tag is None else f" tag={self.tag!r}"
        faults = "" if self.faults is None else f" faults={len(self.faults)}"
        checks = "" if self.checks is None else (
            " checks=strict" if self.checks.strict else " checks=warn"
        )
        return (
            f"strategy={self.strategy} lc=[{lc}] be=[{be}] "
            f"duration={self.duration_s}s warmup={warmup} "
            f"seed={self.collocation.seed}{tag}{faults}{checks}"
        )


class ParallelRunError(ReproError):
    """A run point failed; carries the point so callers can identify it.

    ``completed`` maps batch index → :class:`RunResult` for every point
    that finished before the batch aborted, so a long sweep's surviving
    work can be salvaged even in the default ``raise`` mode.
    """

    def __init__(
        self,
        index: int,
        point: RunPoint,
        cause: BaseException,
        completed: Optional[Dict[int, RunResult]] = None,
    ) -> None:
        super().__init__(
            f"run point #{index} ({point.describe()}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.point = point
        self.completed: Dict[int, RunResult] = dict(completed or {})


@dataclass(frozen=True)
class PointFailure:
    """Structured record of one item's final failure in a batch.

    ``attempts`` counts executions including retries; ``timed_out`` marks
    per-point timeouts (the final attempt exceeded ``timeout_s``).
    """

    index: int
    point: Any
    error_type: str
    message: str
    attempts: int = 1
    timed_out: bool = False
    #: The final exception object (excluded from equality/repr).
    error: Optional[BaseException] = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        how = "timed out" if self.timed_out else "failed"
        return (
            f"point #{self.index} {how} after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (the exception object is omitted)."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }


@dataclass(frozen=True)
class BatchReport:
    """Partial results plus a structured failure report (salvage mode).

    ``results`` aligns with submission order; failed points hold ``None``.
    """

    results: Tuple[Optional[RunResult], ...]
    failures: Tuple[PointFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every point succeeded."""
        return not self.failures

    def completed(self) -> Dict[int, RunResult]:
        """Map batch index → result for every succeeding point."""
        return {
            index: result
            for index, result in enumerate(self.results)
            if result is not None
        }

    def failure_report(self) -> List[Dict[str, Any]]:
        """The failures as JSON-safe dicts (for logs and artefacts)."""
        return [failure.as_dict() for failure in self.failures]


def backoff_s(base_s: float, attempt: int) -> float:
    """Deterministic exponential backoff: ``base_s · 2^attempt``.

    Indexed by the attempt number — no wall-clock randomness, so retry
    schedules are reproducible.
    """
    return base_s * (2.0 ** attempt)


def _failure(
    index: int,
    item: Any,
    error: BaseException,
    attempts: int,
    timed_out: bool = False,
) -> PointFailure:
    """Build the :class:`PointFailure` record for one exhausted item."""
    return PointFailure(
        index=index,
        point=item,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
        timed_out=timed_out,
        error=error,
    )


def run_with_recovery(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
    stop_on_failure: bool = False,
) -> Tuple[List[Optional[Any]], List[PointFailure]]:
    """Execute ``fn(item)`` for every item with bounded retry and timeout.

    The generic engine underneath :func:`run_many`, usable with any
    picklable ``fn``. Returns ``(results, failures)``: ``results`` aligns
    with ``items`` (``None`` where the item ultimately failed), and
    ``failures`` lists one :class:`PointFailure` per exhausted item in
    submission order.

    ``retries`` re-executes a failing item up to that many extra times,
    sleeping :func:`backoff_s` between attempts. ``timeout_s`` bounds each
    attempt's wall-clock; enforcing it requires a worker process, so a
    timeout forces the pool path even for ``jobs=1`` (the plain serial
    path cannot preempt a running call). A timed-out attempt's worker is
    abandoned, not killed — acceptable for simulation workloads.
    ``stop_on_failure`` aborts the batch at the first exhausted item
    (pending work is cancelled; items after the failure stay ``None``).
    """
    if retries < 0:
        raise ConfigurationError(f"retries cannot be negative: {retries}")
    if retry_backoff_s < 0:
        raise ConfigurationError(
            f"retry backoff cannot be negative: {retry_backoff_s}"
        )
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(f"timeout must be positive: {timeout_s}")
    batch = list(items)
    results: List[Optional[Any]] = [None] * len(batch)
    failures: List[PointFailure] = []
    if not batch:
        return results, failures

    workers = min(resolve_jobs(jobs), len(batch))
    if workers == 1 and timeout_s is None:
        for index, item in enumerate(batch):
            last: Optional[BaseException] = None
            for attempt in range(retries + 1):
                if attempt and retry_backoff_s:
                    time.sleep(backoff_s(retry_backoff_s, attempt - 1))
                try:
                    results[index] = fn(item)
                    last = None
                    break
                except Exception as exc:
                    last = exc
            if last is not None:
                failures.append(_failure(index, item, last, retries + 1))
                if stop_on_failure:
                    break
        return results, failures

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in batch]
        for index, item in enumerate(batch):
            future = futures[index]
            failure: Optional[PointFailure] = None
            for attempt in range(retries + 1):
                if attempt:
                    delay = backoff_s(retry_backoff_s, attempt - 1)
                    if delay:
                        time.sleep(delay)
                    future = pool.submit(fn, item)
                try:
                    results[index] = future.result(timeout=timeout_s)
                    failure = None
                    break
                except FuturesTimeoutError as exc:
                    future.cancel()
                    failure = _failure(index, item, exc, attempt + 1, timed_out=True)
                except Exception as exc:
                    failure = _failure(index, item, exc, attempt + 1)
            if failure is not None:
                failures.append(failure)
                if stop_on_failure:
                    for pending in futures[index + 1 :]:
                        pending.cancel()
                    break
    return results, failures


def _execute_point(point: RunPoint) -> RunResult:
    """Worker entry point (module-level so it pickles for the pool)."""
    # Imported lazily: experiments.common builds its run helpers on top of
    # this module, so a top-level import would be circular.
    from repro.experiments.common import STRATEGY_FACTORIES

    scheduler = STRATEGY_FACTORIES[point.strategy]()
    return run_collocation(
        point.collocation,
        scheduler,
        point.duration_s,
        point.warmup_s,
        faults=point.faults,
        checks=point.checks,
    )


def _execute_point_instrumented(
    point: RunPoint, want_trace: bool, want_metrics: bool
) -> Tuple[RunResult, List[TraceEvent], Optional[MetricsRegistry]]:
    """Worker entry point with per-point observability.

    The worker collects its own events and metrics locally; the parent
    replays/merges them in submission order, which is what makes a
    ``--jobs 4`` trace byte-identical to the serial one.
    """
    from repro.experiments.common import STRATEGY_FACTORIES

    scheduler = STRATEGY_FACTORIES[point.strategy]()
    collector = CollectingTracer() if want_trace else None
    registry = MetricsRegistry() if want_metrics else None
    result = run_collocation(
        point.collocation,
        scheduler,
        point.duration_s,
        point.warmup_s,
        tracer=collector,
        metrics=registry,
        faults=point.faults,
        checks=point.checks,
    )
    events = collector.events if collector is not None else []
    return result, events, registry


def metrics_prefix(index: int, point: RunPoint, batch_size: int) -> str:
    """The metric-name prefix for point ``index`` of a ``run_many`` batch.

    A single-point batch keeps bare names (so ``run_many`` over one point
    matches a direct :func:`~repro.cluster.run.run_collocation` call); a
    multi-point batch namespaces each point as ``run<index>.<strategy>/``.
    """
    if batch_size == 1:
        return ""
    return f"run{index:03d}.{point.strategy}/"


def _known_strategies() -> Iterable[str]:
    from repro.experiments.common import STRATEGY_FACTORIES

    return STRATEGY_FACTORIES


def run_many(
    points: Iterable[RunPoint],
    jobs: Optional[int] = None,
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    on_error: str = "raise",
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.0,
):
    """Execute every point, returning results in submission order.

    ``jobs=1`` (or a single point) runs serially in-process; anything
    larger uses a ``ProcessPoolExecutor`` with ``min(jobs, len(points))``
    workers.

    ``on_error="raise"`` (default) aborts at the first failing point with
    a :class:`ParallelRunError` carrying the already-completed results in
    its ``completed`` attribute, and returns a plain ``List[RunResult]``
    when everything succeeds. ``on_error="salvage"`` always returns a
    :class:`BatchReport`: results for every succeeding point plus a
    structured failure report — one worker crashing or timing out no
    longer discards the rest of the sweep. ``timeout_s``, ``retries`` and
    ``retry_backoff_s`` follow :func:`run_with_recovery`.

    When ``tracer`` or ``metrics`` is given, every point runs with its own
    collecting tracer and registry (inside the worker process, when
    pooled); the parent then replays each point's events to ``tracer`` and
    merges its registry into ``metrics`` **in submission order**, so the
    observed stream is identical for every ``jobs`` setting. Multi-point
    batches namespace merged metrics with :func:`metrics_prefix`; failed
    points contribute no events or metrics.
    """
    if on_error not in ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    batch = list(points)
    known = _known_strategies()
    for index, point in enumerate(batch):
        if not isinstance(point, RunPoint):
            raise ConfigurationError(
                f"run_many expects RunPoint values, got {type(point).__name__} "
                f"at index {index}"
            )
        if point.strategy not in known:
            raise ConfigurationError(
                f"unknown strategy {point.strategy!r} at index {index}; "
                f"known strategies: {sorted(known)}"
            )
    if not batch:
        return [] if on_error == "raise" else BatchReport(results=())

    instrumented = tracer is not None or metrics is not None
    want_trace = tracer is not None
    want_metrics = metrics is not None
    if instrumented:
        fn = functools.partial(
            _execute_point_instrumented,
            want_trace=want_trace,
            want_metrics=want_metrics,
        )
    else:
        fn = _execute_point

    outcomes, failures = run_with_recovery(
        fn,
        batch,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        stop_on_failure=(on_error == "raise"),
    )

    results: List[Optional[RunResult]] = []
    for index, (point, outcome) in enumerate(zip(batch, outcomes)):
        if outcome is None:
            results.append(None)
            continue
        if instrumented:
            result, events, registry = outcome
            if tracer is not None:
                for event in events:
                    tracer.emit(event)
            if metrics is not None and registry is not None:
                metrics.merge(
                    registry, prefix=metrics_prefix(index, point, len(batch))
                )
        else:
            result = outcome
        results.append(result)

    if on_error == "salvage":
        return BatchReport(results=tuple(results), failures=tuple(failures))
    if failures:
        first = failures[0]
        completed = {
            index: result for index, result in enumerate(results) if result is not None
        }
        raise ParallelRunError(
            first.index, batch[first.index], first.error, completed=completed
        ) from first.error
    return results


@dataclass
class RunGrid:
    """Builder for a batch of run points executed together.

    Accumulate points with :meth:`add` (each returns its index), then call
    :meth:`run` for results in insertion order, or :meth:`run_tagged` for
    ``(tag, result)`` pairs — the natural shape for heatmap grids.
    ``timeout_s``/``retries``/``retry_backoff_s`` and ``on_error`` forward
    to :func:`run_many`.
    """

    jobs: Optional[int] = None
    points: List[RunPoint] = field(default_factory=list)
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    on_error: str = "raise"
    timeout_s: Optional[float] = None
    retries: int = 0
    retry_backoff_s: float = 0.0

    def add(
        self,
        collocation: Collocation,
        strategy: str,
        duration_s: float = 120.0,
        warmup_s: Optional[float] = None,
        tag: Optional[Hashable] = None,
        faults: Optional[FaultPlan] = None,
        checks: Optional[CheckConfig] = None,
    ) -> int:
        """Append one point; returns its batch index."""
        self.points.append(
            RunPoint(
                collocation=collocation,
                strategy=strategy,
                duration_s=duration_s,
                warmup_s=warmup_s,
                tag=tag,
                faults=faults,
                checks=checks,
            )
        )
        return len(self.points) - 1

    def __len__(self) -> int:
        return len(self.points)

    def run(self):
        """Execute the batch (see :func:`run_many` for the return shape)."""
        return run_many(
            self.points,
            jobs=self.jobs,
            tracer=self.tracer,
            metrics=self.metrics,
            on_error=self.on_error,
            timeout_s=self.timeout_s,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
        )

    def run_tagged(self) -> List[Tuple[Optional[Hashable], RunResult]]:
        """``(tag, result)`` pairs in insertion order (``raise`` mode only)."""
        if self.on_error != "raise":
            raise ConfigurationError(
                "run_tagged() needs on_error='raise'; use run() and "
                "BatchReport for salvage semantics"
            )
        return [(point.tag, result) for point, result in zip(self.points, self.run())]
