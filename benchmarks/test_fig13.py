"""Fig. 13 — fluctuating Xapian load: violations and adaptation."""

from conftest import emit

from repro.experiments.fig13_fluctuating import render, run_fig13


def test_fig13(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    emit("fig13", render(result))

    # The paper's headline: ARQ suffers materially fewer tail-latency
    # violations than PARTIES over the 250 s / 500-sample trace
    # (paper: 59 vs 105).
    assert result.violations["arq"] < result.violations["parties"]

    # ARQ also ends with the lowest overall entropy of the three.
    assert result.mean_e_s["arq"] <= min(result.mean_e_s.values()) + 1e-9

    # LC-first leaves E_BE high and cannot protect against Stream's
    # bandwidth pressure as well as ARQ at the load peak.
    assert result.mean_e_lc["arq"] < result.mean_e_lc["lc-first"]

    # ARQ's shared region shrinks when Xapian's load peaks (resources are
    # pulled into the isolated region) and recovers afterwards.
    shared = [cores for _, cores in result.shared_core_series("arq")]
    assert min(shared) < shared[0]
