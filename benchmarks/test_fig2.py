"""Fig. 2 — impact of the amount of available resources on E_S."""

from conftest import emit

from repro.entropy.properties import check_resource_sensitivity
from repro.experiments.fig2_resource_surface import render, run_fig2


def test_fig2(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit("fig2", render(result))

    for strategy in ("unmanaged", "arq"):
        cores_curve = result.by_cores[strategy]
        ways_curve = result.by_ways[strategy]
        # Property ②: more resources never increase E_S (noise-tolerant).
        assert check_resource_sensitivity(cores_curve, tolerance=0.05) == []
        assert check_resource_sensitivity(ways_curve, tolerance=0.05) == []
        # Plenty (10 cores / 20 ways) → tiny entropy (paper: 0.006-0.008).
        assert cores_curve[10.0] < 0.08
        # Scarcity (4 cores) → large entropy.
        assert cores_curve[4.0] > 0.3

    # Under scarcity ARQ clearly beats Unmanaged (paper: 0.15 vs 0.53 at
    # 6 cores).
    assert result.by_cores["arq"][6.0] < result.by_cores["unmanaged"][6.0]
