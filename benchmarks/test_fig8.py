"""Fig. 8 — Xapian sweep collocated with Fluidanimate (both panels)."""

from conftest import emit

from repro.experiments.fig8_fluidanimate import (
    headline_numbers,
    render,
    run_fig8,
)


def test_fig8_panel_20(benchmark):
    result = benchmark.pedantic(
        run_fig8, kwargs={"moses_imgdnn_load": 0.2}, rounds=1, iterations=1
    )
    emit("fig8_panel20", render(result))

    e_s = result.series("e_s")
    by_strategy = {name: dict(points) for name, points in e_s.items()}

    # Low load: Unmanaged (sharing) is competitive — at or near the best.
    low = 0.1
    assert by_strategy["unmanaged"][low] <= by_strategy["parties"][low] + 0.02
    # High load: Unmanaged collapses; ARQ stays lowest.
    high = 0.9
    assert by_strategy["arq"][high] < by_strategy["unmanaged"][high]
    assert by_strategy["arq"][high] <= by_strategy["lc-first"][high] + 0.02

    # ARQ has the lowest mean E_S among the QoS-aware strategies; in this
    # gentle mix plain sharing (Unmanaged) is allowed to win the low-load
    # half, exactly as §VI-A describes.
    means = result.mean_over_loads("e_s")
    managed = {k: v for k, v in means.items() if k != "unmanaged"}
    assert means["arq"] <= min(managed.values()) + 0.01

    # Fig. 8(b) headline shapes: ARQ cuts tail latency vs Unmanaged and
    # beats the partitioners on BE IPC at low load.
    numbers = headline_numbers(result)
    assert numbers["tail_reduction_arq"] < 0.0
    assert numbers["ipc_gain_vs_parties"] > 10.0
    assert numbers["ipc_gain_vs_clite"] > 10.0


def test_fig8_panel_40(benchmark):
    result = benchmark.pedantic(
        run_fig8, kwargs={"moses_imgdnn_load": 0.4}, rounds=1, iterations=1
    )
    emit("fig8_panel40", render(result))

    means = result.mean_over_loads("e_s")
    assert means["arq"] == min(means.values())
    # Heavier background load widens ARQ's yield advantage.
    yields = result.mean_over_loads("yield")
    assert yields["arq"] >= max(yields.values()) - 1e-9
