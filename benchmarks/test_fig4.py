"""Fig. 4 — the space-time isolation/sharing illustration."""

from conftest import emit

from repro.experiments.fig4_spacetime import (
    Cell,
    render,
    run_isolated,
    run_shared,
    run_solo,
)


def test_fig4(benchmark):
    def run_all():
        return run_solo(), run_isolated(), run_shared()

    solo, isolated, shared = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("fig4", render([solo, isolated, shared]))

    # The paper's counts: sharing cuts unmet demands from 10 to 6, serves
    # four of them with switching overhead, and nearly doubles utilisation.
    assert isolated.count(Cell.CROSS) == 10
    assert shared.count(Cell.CROSS) == 6
    assert shared.count(Cell.TRIANGLE) == 4
    assert shared.utilisation == 2 * isolated.utilisation
