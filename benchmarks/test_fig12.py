"""Fig. 12 — six LC + two BE applications at 20% load (scalability)."""

from conftest import emit

from repro.experiments.fig12_eight_apps import SIX_LC, render, run_fig12
from repro.workloads.catalog import lc_profile


def test_fig12(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    emit("fig12", render(result))

    # The headline: ARQ reduces E_S vs PARTIES (paper: −36.4%, 0.33→0.21).
    assert result.e_s["arq"] < result.e_s["parties"]
    assert result.yields["arq"] >= result.yields["parties"]

    # The paper's mechanism: with eight tenants the machine is heavily
    # over-subscribed and PARTIES' strict partitions leave applications
    # violating hard (paper: Moses 29.88 ms, Sphinx 7904 ms — our PARTIES
    # reproduces exactly this pattern). ARQ's pooled shared region spreads
    # the pain better: lower E_LC and at least one fully satisfied
    # tight-threshold application where PARTIES satisfies none.
    assert result.e_lc["arq"] < result.e_lc["parties"]
    assert result.yields["arq"] >= result.yields["parties"]

    # ARQ trades violations differently than PARTIES (rescuing the
    # deepest victims at some cost elsewhere), but never worse overall:
    # total intolerable interference across applications is lower.
    def total_q(strategy: str) -> float:
        total = 0.0
        for app in SIX_LC:
            threshold = lc_profile(app).threshold_ms
            tail = result.tails_ms[strategy][app]
            if tail > threshold:
                total += 1.0 - threshold / tail
        return total

    assert total_q("arq") < total_q("parties")
