"""Fig. 9 — Xapian sweep collocated with Stream (severe interference)."""

from conftest import emit

from repro.experiments.fig9_stream import headline_numbers, render, run_fig9


def test_fig9_panel_20(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs={"moses_imgdnn_load": 0.2}, rounds=1, iterations=1
    )
    emit("fig9_panel20", render(result))

    e_lc = {name: dict(p) for name, p in result.series("e_lc").items()}
    # Unmanaged cannot satisfy QoS even at low load (§VI-A).
    assert e_lc["unmanaged"][0.1] > 0.2
    # The managed strategies keep E_LC low at low load.
    for strategy in ("parties", "clite", "arq"):
        assert e_lc[strategy][0.1] < 0.1

    means = result.mean_over_loads("e_s")
    assert means["arq"] == min(means.values())

    numbers = headline_numbers(result)
    # The paper's headline directions: ARQ's yield ≥ PARTIES/CLITE and its
    # E_S below both (paper: +25/+20 pp and −36.4%/−33.3%).
    assert numbers["yield_gain_vs_parties_pp"] >= 0.0
    assert numbers["yield_gain_vs_clite_pp"] >= 0.0
    assert numbers["e_s_reduction_vs_parties"] < 0.0
    assert numbers["e_s_reduction_vs_clite"] < 0.0


def test_fig9_panel_40(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs={"moses_imgdnn_load": 0.4}, rounds=1, iterations=1
    )
    emit("fig9_panel40", render(result))

    # The extreme point (Xapian 90%, others 40%): only ARQ keeps E_LC low
    # (paper: 0.06; PARTIES/CLITE cannot find a feasible allocation).
    e_lc = {name: dict(p) for name, p in result.series("e_lc").items()}
    assert e_lc["arq"][0.9] < 0.1
    assert e_lc["parties"][0.9] > e_lc["arq"][0.9]

    # Paper: ARQ cuts E_S by 73.4% vs Unmanaged at this point, more than
    # CLITE (53.2%) and PARTIES (22.3%).
    e_s = {name: dict(p) for name, p in result.series("e_s").items()}
    arq_cut = 1.0 - e_s["arq"][0.9] / e_s["unmanaged"][0.9]
    parties_cut = 1.0 - e_s["parties"][0.9] / e_s["unmanaged"][0.9]
    assert arq_cut > 0.5
    assert arq_cut > parties_cut
