"""Fig. 10 — Xapian × Img-dnn load heatmaps, PARTIES vs ARQ."""

from conftest import emit

from repro.experiments.fig10_heatmap import advantage_grid, render, run_fig10


def test_fig10(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    emit("fig10", render(result))

    # Low-load corner: ARQ's shared region gives the BE tenant more →
    # lower E_BE than PARTIES (paper: the top-left of the middle maps).
    corner_low = (0.1, 0.1)
    assert result.e_be["arq"][corner_low] < result.e_be["parties"][corner_low]

    # High-load band: ARQ's LC applications borrow from the shared region,
    # keeping E_LC far below PARTIES' across the bottom-right of the map
    # (at the very (0.9, 0.9) corner the machine is infeasible for every
    # strategy; the band average is the meaningful comparison).
    band = [key for key in result.e_lc["arq"] if max(key) >= 0.7]
    arq_band = sum(result.e_lc["arq"][key] for key in band) / len(band)
    parties_band = sum(result.e_lc["parties"][key] for key in band) / len(band)
    assert arq_band < parties_band

    # ARQ's E_S is at least as low as PARTIES' over most of the grid.
    advantages = advantage_grid(result, "e_s")
    better_cells = sum(1 for gap in advantages.values() if gap > -0.02)
    assert better_cells >= 0.7 * len(advantages)
