"""Fig. 17* — ARQ-vs-CLITE-vs-Unmanaged A/B comparisons with 95% CIs."""

from conftest import emit

from repro.experiments.fig17_ab import render, run_fig17, variance_reductions


def test_fig17(benchmark):
    results = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    emit("fig17", render(results))

    # The canonical mix's calibrated shape: ARQ sits a hair above
    # Unmanaged (nothing to manage), strictly below CLITE.
    vs_unmanaged = results["unmanaged"].estimate("e_s", "paired")
    assert vs_unmanaged.excludes_zero()
    # Small positive effect: a real partitioning cost, but nowhere near
    # the ~0.66 swing the stream mix shows (the ±10% load jitter pushes
    # the interval slightly past the jitter-free 0.03 ordering slack).
    assert 0.0 < vs_unmanaged.ci_low and vs_unmanaged.ci_high < 0.05
    vs_clite = results["clite"].estimate("e_s", "paired")
    assert vs_clite.ci_high < 0.0

    # Common random numbers must buy variance, not just ceremony: the
    # paired and DQ estimators beat naive difference-in-means on the same
    # trial budget wherever the naive estimator has variance to beat.
    for result in results.values():
        for key, ratio in variance_reductions(result).items():
            assert ratio <= 1.0, (result.policy_b, key, ratio)
        naive = result.estimate("e_s", "naive")
        paired = result.estimate("e_s", "paired")
        assert paired.variance < naive.variance

    # Every DQ assumption check (Little's-law cross-validation) held.
    for result in results.values():
        assert result.littles_law is not None and result.littles_law.ok
