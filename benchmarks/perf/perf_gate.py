"""CI perf gate: fail fast when a hot-path number regresses.

A quick smoke (~seconds, not the full ``bench_sweep.py`` refresh) that
holds the two regression-prone numbers from ISSUE/ROADMAP item 1 to
their targets:

* **CLITE decide()** — mean ≤ 50 µs and p99 ≤ 500 µs per epoch. CLITE
  is the strategy whose decision used to cost an O(n³) GP refit per
  epoch; this keeps the incremental-Cholesky path honest.
* **Pool dispatch overhead** — the sweep grid forced through a
  one-worker warm pool must stay within 1.1× of the in-process serial
  path. On a single-core CI runner a speedup is impossible, so overhead
  is the honest parallel-runner metric (see ``bench_sweep.py``).

Methodology matches the bench: full-grid warmup on both paths first
(worker spawn and cache fills are one-off costs the warm pool exists to
amortise), legs interleaved within every repeat so background-load
drift biases none of them, and the **minimum** over repeats reported —
the simulator is deterministic, so run-to-run spread is scheduler noise
that only ever adds time.

Usage::

    PYTHONPATH=src python benchmarks/perf/perf_gate.py [--repeats N]

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.common import canonical_mix, make_collocation
from repro.obs.metrics import MetricsRegistry
from repro.parallel import RunPoint, run_many

DECIDE_MEAN_BUDGET_US = 50.0
DECIDE_P99_BUDGET_US = 500.0
POOL_OVERHEAD_BUDGET = 1.1


def gate_clite_decide(duration_s: float, repeats: int) -> List[str]:
    """CLITE per-epoch decide() cost, best-of-``repeats`` means."""
    points = [
        RunPoint(canonical_mix(0.5), "clite", duration_s, duration_s / 2)
        for _ in range(repeats)
    ]
    run_many(points[:1], jobs=1)  # warm imports, catalog, quantile caches
    registry = MetricsRegistry()
    run_many(points, jobs=1, metrics=registry)
    summaries = [
        registry.histogram(f"run{rep:03d}.clite/decide_time_s").summary()
        for rep in range(repeats)
    ]
    best = min(summaries, key=lambda summary: summary["mean"])
    mean_us = best["mean"] * 1e6
    p99_us = best["p99"] * 1e6
    print(
        f"clite decide(): mean {mean_us:.1f}µs p99 {p99_us:.1f}µs "
        f"over {best['count']:.0f} epochs (best of {repeats})"
    )
    failures = []
    if mean_us > DECIDE_MEAN_BUDGET_US:
        failures.append(
            f"CLITE decide() mean {mean_us:.1f}µs exceeds the "
            f"{DECIDE_MEAN_BUDGET_US:.0f}µs budget"
        )
    if p99_us > DECIDE_P99_BUDGET_US:
        failures.append(
            f"CLITE decide() p99 {p99_us:.1f}µs exceeds the "
            f"{DECIDE_P99_BUDGET_US:.0f}µs budget"
        )
    return failures


def gate_pool_overhead(duration_s: float, repeats: int) -> List[str]:
    """Warm-pool dispatch tax at jobs=1 vs the in-process serial path."""
    points = [
        RunPoint(
            make_collocation(
                {"xapian": xapian, "moses": 0.2, "img-dnn": imgdnn}, ["stream"]
            ),
            strategy,
            duration_s,
            duration_s / 2,
        )
        for xapian in (0.1, 0.5, 0.9)
        for imgdnn in (0.1, 0.5, 0.9)
        for strategy in ("parties", "arq")
    ]
    run_many(points, jobs=1)
    run_many(points, jobs=1, force_pool=True)
    serial_s = pool_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_many(points, jobs=1)
        serial_s = min(serial_s, time.perf_counter() - start)
        start = time.perf_counter()
        run_many(points, jobs=1, force_pool=True)
        pool_s = min(pool_s, time.perf_counter() - start)
    ratio = pool_s / serial_s if serial_s > 0 else float("inf")
    print(
        f"pool overhead (jobs=1, {len(points)} points): "
        f"serial {serial_s:.3f}s → warm pool {pool_s:.3f}s ({ratio:.3f}x)"
    )
    if ratio > POOL_OVERHEAD_BUDGET:
        return [
            f"pool dispatch overhead {ratio:.3f}x exceeds the "
            f"{POOL_OVERHEAD_BUDGET}x budget"
        ]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of repeats per gate (more repeats, less noise)",
    )
    parser.add_argument(
        "--decide-duration",
        type=float,
        default=90.0,
        help="simulated seconds per decide()-profile run (matches the "
        "committed BENCH_sweep.json profile)",
    )
    parser.add_argument(
        "--pool-duration",
        type=float,
        default=60.0,
        help="simulated seconds per pool-overhead grid point",
    )
    args = parser.parse_args(argv)

    failures = gate_clite_decide(args.decide_duration, args.repeats)
    failures += gate_pool_overhead(args.pool_duration, args.repeats)
    if failures:
        for failure in failures:
            print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
