"""Timing harness for the parallel runner and the queueing hot path.

Measures two speedups plus per-strategy ``decide()`` cost, recorded in
``BENCH_sweep.json`` (next to this file) so future PRs can track
regressions:

* **quantile caching** — one `run` (canonical mix, ARQ) with the
  gamma-quantile/sojourn memoisation disabled vs enabled;
* **process fan-out** — a Fig. 10-style sweep grid executed with
  ``jobs=1`` vs ``jobs=N`` (default: the core count, or ``$REPRO_JOBS``);
* **pool overhead** — the same points through the in-process serial
  shortcut vs forced through a one-worker warm pool (``force_pool``),
  the honest parallel-runner metric on a single-core box;
* **decide() profile** — every strategy's per-epoch decision wall time,
  read from the ``decide_time_s`` histogram the run loop feeds into a
  :class:`repro.obs.metrics.MetricsRegistry`.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_sweep.py [--quick] [--jobs N]

The recorded wall times are machine-dependent; the JSON records the CPU
count at the *top level* (plus library versions under ``machine``) so
cross-PR comparisons stay honest: the fan-out speedup is bounded by
``min(jobs, cpu_count)`` and only materialises on multi-core boxes — a
single-core run should be compared on ``pool_overhead`` and the decide()
profile instead.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time
from typing import Dict, List, Optional

from repro.experiments.common import STRATEGY_ORDER, canonical_mix, make_collocation
from repro.obs.metrics import MetricsRegistry
from repro.parallel import RunPoint, resolve_jobs, run_many
from repro.perfmodel import queueing

OUTPUT_PATH = pathlib.Path(__file__).parent / "BENCH_sweep.json"


def _fresh_caches() -> None:
    queueing.clear_caches()


def _time(points: List[RunPoint], jobs: int) -> float:
    start = time.perf_counter()
    run_many(points, jobs=jobs)
    return time.perf_counter() - start


def bench_single_run(duration_s: float) -> Dict[str, float]:
    """One ARQ run on the canonical mix: caches off vs on (cold caches)."""
    point = [RunPoint(canonical_mix(0.5), "arq", duration_s, duration_s / 2)]
    run_many(point, jobs=1)  # JIT-style warmup: imports, catalog, calibration

    queueing.set_caches_enabled(False)
    try:
        uncached_s = _time(point, jobs=1)
    finally:
        queueing.set_caches_enabled(True)

    _fresh_caches()
    cached_s = _time(point, jobs=1)
    return {
        "duration_s": duration_s,
        "uncached_wall_s": uncached_s,
        "cached_wall_s": cached_s,
        "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
    }


def _sweep_points(loads: List[float], duration_s: float) -> List[RunPoint]:
    points = []
    for xapian in loads:
        for imgdnn in loads:
            mix = make_collocation(
                {"xapian": xapian, "moses": 0.2, "img-dnn": imgdnn}, ["stream"]
            )
            for strategy in ("parties", "arq"):
                points.append(RunPoint(mix, strategy, duration_s, duration_s / 2))
    return points


def bench_pool_overhead(
    loads: List[float], duration_s: float, repeats: int = 5
) -> Dict[str, float]:
    """Warm-pool dispatch tax at ``jobs=1``: pool path vs serial shortcut.

    On a single-core machine the fan-out speedup cannot materialise, so
    the honest parallel-runner number is how little the pool machinery
    *costs*: the sweep grid executed in process vs forced through a
    one-worker warm pool (``force_pool=True``). Each leg takes the best
    of ``repeats`` to shed scheduler noise; ``perf_gate.py`` holds
    ``overhead_ratio`` below 1.1×.

    Two pool numbers are reported. ``pool_wall_s`` is the dispatch tax
    proper — submit, simulate in the worker, ship results back columnar
    (epoch records cross as float arrays and decode lazily, so this leg
    pays pickling and transport but not object rebuild). The
    ``materialised`` leg additionally touches every result's
    ``.records``, forcing the lazy decode — what a consumer that
    inspects every epoch of every result pays end to end.
    """
    points = _sweep_points(loads, duration_s)
    # Full-grid warmup on BOTH paths: the serial leg memoises quantile
    # caches in this process, the pool leg in the (persistent) worker —
    # worker spawn and first-touch cache fills are one-off costs the
    # reusable pool exists to amortise, so neither belongs in the ratio.
    run_many(points, jobs=1)
    run_many(points, jobs=1, force_pool=True)
    # The three legs are interleaved within every repeat (not run as
    # three back-to-back blocks) so slow drift in background load biases
    # none of them; the min over repeats then sheds the remaining noise.
    serial_s = pool_s = materialised_s = float("inf")
    for _ in range(repeats):
        serial_s = min(serial_s, _time(points, jobs=1))
        start = time.perf_counter()
        run_many(points, jobs=1, force_pool=True)
        pool_s = min(pool_s, time.perf_counter() - start)
        start = time.perf_counter()
        for result in run_many(points, jobs=1, force_pool=True):
            result.records
        materialised_s = min(materialised_s, time.perf_counter() - start)
    return {
        "grid_points": len(points),
        "duration_s": duration_s,
        "repeats": repeats,
        "serial_wall_s": serial_s,
        "pool_wall_s": pool_s,
        "overhead_ratio": pool_s / serial_s if serial_s > 0 else float("inf"),
        "materialised_wall_s": materialised_s,
        "materialised_ratio": (
            materialised_s / serial_s if serial_s > 0 else float("inf")
        ),
    }


def bench_decide_profile(
    duration_s: float, repeats: int = 3
) -> Dict[str, Dict[str, float]]:
    """Per-strategy ``decide()`` wall-time summary, via the metrics registry.

    Canonical-mix runs per strategy; the run loop times every decision
    into the ``decide_time_s`` histogram, whose summary (p50/p99, count)
    is the comparison the paper's overhead discussion cares about.

    Each strategy runs ``repeats`` times and the repetition with the
    lowest mean is reported: the simulator is deterministic, so run-to-run
    spread is scheduler/interpreter noise that only ever adds time, and
    the minimum is the faithful estimate on a shared box.
    """
    points = [
        RunPoint(canonical_mix(0.5), strategy, duration_s, duration_s / 2)
        for strategy in STRATEGY_ORDER
        for _ in range(repeats)
    ]
    registry = MetricsRegistry()
    run_many(points, jobs=1, metrics=registry)
    profile: Dict[str, Dict[str, float]] = {}
    for index, strategy in enumerate(STRATEGY_ORDER):
        best: Optional[Dict[str, float]] = None
        for rep in range(repeats):
            name = f"run{index * repeats + rep:03d}.{strategy}/decide_time_s"
            summary = registry.histogram(name).summary()
            if best is None or summary["mean"] < best["mean"]:
                best = summary
        profile[strategy] = best
    return profile


def bench_sweep(
    loads: List[float], duration_s: float, jobs: int
) -> Dict[str, object]:
    """A Fig. 10-style grid, serial vs ``jobs`` worker processes."""
    points = _sweep_points(loads, duration_s)
    run_many(points[:2], jobs=1)  # warm the in-process caches for fairness
    serial_s = _time(points, jobs=1)
    parallel_s = _time(points, jobs=jobs)
    return {
        "grid_points": len(points),
        "duration_s": duration_s,
        "jobs": jobs,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Run both benchmarks and write ``BENCH_sweep.json``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None, help="parallel worker count")
    parser.add_argument(
        "--quick", action="store_true", help="smaller grid and shorter runs"
    )
    parser.add_argument("--output", default=str(OUTPUT_PATH))
    args = parser.parse_args(argv)

    # All timings except the explicit "uncached" leg assume memoisation is
    # live; a stray set_caches_enabled(False) would silently poison them.
    assert queueing.caches_enabled(), "quantile caching must be enabled"

    cores = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else resolve_jobs(None)
    if args.quick:
        loads, run_duration, sweep_duration = [0.1, 0.5, 0.9], 60.0, 30.0
    else:
        loads, run_duration, sweep_duration = [0.1, 0.3, 0.5, 0.7, 0.9], 120.0, 90.0

    single = bench_single_run(run_duration)
    print(
        f"single run ({run_duration:.0f}s sim): "
        f"uncached {single['uncached_wall_s']:.3f}s → "
        f"cached {single['cached_wall_s']:.3f}s "
        f"({single['speedup']:.2f}x from quantile caching)"
    )

    sweep = bench_sweep(loads, sweep_duration, jobs)
    # The fan-out speedup is bounded by the narrower of worker count and
    # physical cores; record the bound so a 1.0x on a 1-core box reads as
    # expected rather than as a regression.
    sweep["expected_max_speedup"] = min(jobs, cores)
    print(
        f"sweep ({sweep['grid_points']} points × {sweep_duration:.0f}s sim): "
        f"serial {sweep['serial_wall_s']:.3f}s → "
        f"jobs={jobs} {sweep['parallel_wall_s']:.3f}s "
        f"({sweep['speedup']:.2f}x from fan-out, "
        f"ceiling {sweep['expected_max_speedup']}x on {cores} core(s))"
    )

    pool = bench_pool_overhead(loads, sweep_duration)
    print(
        f"pool overhead (jobs=1, {pool['grid_points']} points): "
        f"serial {pool['serial_wall_s']:.3f}s → "
        f"warm pool {pool['pool_wall_s']:.3f}s "
        f"({pool['overhead_ratio']:.3f}x dispatch, "
        f"{pool['materialised_ratio']:.3f}x with records materialised)"
    )

    decide = bench_decide_profile(sweep_duration)
    for strategy, summary in decide.items():
        print(
            f"decide() {strategy}: p50 {summary['p50'] * 1e6:.1f}µs "
            f"p99 {summary['p99'] * 1e6:.1f}µs over {summary['count']:.0f} epochs"
        )

    import numpy
    import scipy

    record = {
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        # Top-level on purpose: the first thing a cross-PR comparison
        # must check before reading any speedup below.
        "cpu_count": cores,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": cores,
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
        },
        "quick": args.quick,
        "single_run": single,
        "sweep": sweep,
        "pool_overhead": pool,
        "decide_profile": decide,
    }
    output = pathlib.Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
