"""CI perf gate: the windowed tracer must stay O(K) on long traces.

The streaming-observability contract (ROADMAP item 4) is that
:class:`repro.obs.windows.WindowedTracer` folds arbitrarily long event
streams at bounded memory: the ring keeps ``keep`` windows, so peak
tracer allocation is a function of ``keep`` — never of the event count.
This smoke synthesises a million-event trace (epoch measurements, QoS
violations, scheduler decisions and fault markers in realistic
proportions) and holds two ceilings:

* **Peak RSS** after folding must stay under
  :data:`PEAK_RSS_BUDGET_MB` (``resource.getrusage``; the
  CollectingTracer equivalent holds ~10⁶ event objects — hundreds of
  MB — so the ceiling fails loudly if anyone reintroduces buffering);
* **Fold throughput** must stay above
  :data:`MIN_EVENTS_PER_S` events/second so windowed tracing stays
  cheap enough to leave on for every run.

RSS is used rather than ``tracemalloc`` because tracing slows
allocation several-fold and would poison the wall-time leg (the
fine-grained O(K) property is covered by
``tests/test_obs_windows.py``'s tracemalloc test). Events are
synthesised by a generator — nothing buffers the stream, so the
measurement isolates the tracer itself. The run also cross-checks
correctness: the summary must count every event, keep exactly ``keep``
windows, and report the injected fault interval.

Usage::

    PYTHONPATH=src python benchmarks/perf/windows_gate.py [--events N]

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from typing import Iterator, List

from repro.obs.events import (
    EpochMeasured,
    FaultInjected,
    QoSViolation,
    SchedulerDecision,
    TraceEvent,
)
from repro.obs.windows import WindowConfig, WindowedTracer

DEFAULT_EVENTS = 1_000_000
PEAK_RSS_BUDGET_MB = 300.0
MIN_EVENTS_PER_S = 25_000.0
KEEP = 256


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MB (Linux: KiB units)."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if sys.platform != "darwin" else 1.0
    return ru_maxrss * scale / 1e6


def synthetic_stream(count: int) -> Iterator[TraceEvent]:
    """``count`` events over a long simulated timeline (dt = 50 ms)."""
    apps = ("xapian", "masstree")
    for i in range(count):
        t = i * 0.05
        slot = i % 10
        if slot < 7:
            tail = 5.0 + (i % 13) * 0.4
            yield EpochMeasured(
                time_s=t,
                epoch=i,
                e_s=0.3 + (i % 7) * 0.01,
                e_lc=0.15,
                e_be=0.15,
                loads={apps[0]: 0.5, apps[1]: 0.3},
                tails_ms={apps[0]: tail, apps[1]: tail * 2},
                ipcs={apps[0]: 1.2, apps[1]: 0.9},
                violations=0,
            )
        elif slot < 9:
            yield SchedulerDecision(
                time_s=t, epoch=i, scheduler="arq", plan_changed=(slot == 8)
            )
        elif i % 1000 == 999:
            yield FaultInjected(
                time_s=t, fault="load_spike", targets=(apps[0],), until_s=t + 5.0
            )
        else:
            yield QoSViolation(
                time_s=t, epoch=i, application=apps[0], tail_ms=60.0, threshold_ms=8.0
            )


def gate_windowed_fold(events: int) -> List[str]:
    """Fold ``events`` synthetic events; check memory, speed, counts."""
    failures: List[str] = []
    tracer = WindowedTracer(config=WindowConfig(dt_s=1.0, keep=KEEP))
    started = time.perf_counter()
    for event in synthetic_stream(events):
        tracer.emit(event)
    elapsed = time.perf_counter() - started
    peak_mb = _peak_rss_mb()

    summary = tracer.summary()
    rate = events / elapsed
    print(
        f"windowed fold: {events} events in {elapsed:.2f}s "
        f"({rate:,.0f} ev/s), peak RSS {peak_mb:.1f} MB, "
        f"{len(summary.windows)} windows kept, "
        f"evicted through {summary.evicted_through}"
    )
    if peak_mb > PEAK_RSS_BUDGET_MB:
        failures.append(
            f"peak RSS {peak_mb:.1f} MB exceeds "
            f"{PEAK_RSS_BUDGET_MB:.0f} MB — the ring is leaking"
        )
    if rate < MIN_EVENTS_PER_S:
        failures.append(
            f"fold rate {rate:,.0f} ev/s below {MIN_EVENTS_PER_S:,.0f} ev/s"
        )
    if summary.events != events:
        failures.append(f"summary counted {summary.events} of {events} events")
    if len(summary.windows) != KEEP:
        failures.append(
            f"ring holds {len(summary.windows)} windows, expected {KEEP}"
        )
    if not summary.faults:
        failures.append("no fault interval recorded from the injected markers")
    return failures


def main(argv: List[str] | None = None) -> int:
    """Run the gate; 0 when every ceiling holds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=DEFAULT_EVENTS,
        help=f"events to synthesise (default {DEFAULT_EVENTS})",
    )
    args = parser.parse_args(argv)
    failures = gate_windowed_fold(args.events)
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all window gates hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
