"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment once under ``pytest-benchmark`` timing,
prints the rendered artefact (run with ``-s`` to see it inline; it is
also written to ``benchmarks/output/``), and asserts the paper's shape
claims for that artefact.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print an artefact and persist it under benchmarks/output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
