"""Fig. 1 — the strategy A vs B motivating example."""

from conftest import emit

from repro.experiments.fig1_example import render, run_fig1


def test_fig1(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    emit("fig1", render(result))

    run_a, run_b = result.runs["A"], result.runs["B"]
    # Strategy A: a small QoS violation inside the 5% elasticity...
    tails_a = run_a.mean_tail_latencies_ms()
    worst_violation = max(
        tails_a[name] / run_a.collocation.lc_profiles[name].threshold_ms
        for name in tails_a
    )
    assert worst_violation < 1.08
    # ...but a far better BE experience than strategy B.
    assert run_a.mean_ipcs()["fluidanimate"] > 2 * run_b.mean_ipcs()["fluidanimate"]
    # E_S resolves the ambiguity in favour of A (the paper's argument).
    assert result.winner() == "A"
