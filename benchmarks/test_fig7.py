"""Fig. 7 + Table IV — tail latency vs arrival rate per core count."""

import pytest
from conftest import emit

from repro.experiments.fig7_load_curves import knee_table, render, run_fig7
from repro.workloads.catalog import lc_profile


def test_fig7(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    emit("fig7", render(result))

    # Hockey-stick shape: every curve is monotone in load.
    for curve in result.curves:
        tails = [tail for _, tail in curve.points]
        assert tails == sorted(tails) or max(tails) >= 1e5  # saturated tail

    # Knees scale with core count: with k cores (k ≤ threads) the knee
    # sits near k/4 of the max load.
    knees = {
        (app, cores): knee for app, cores, knee in knee_table(result)
    }
    for app in ("xapian", "moses", "img-dnn"):
        assert knees[(app, 1)] is not None and knees[(app, 1)] <= 0.4
        assert knees[(app, 2)] is not None and 0.3 <= knees[(app, 2)] <= 0.7
        four = knees[(app, 4)]
        # Table IV's definition: threshold crossed at ~max load.
        assert four is None or four >= 0.95

    # The analytic model tracks the request-level DES at its checkpoints.
    for app, _, load, model_p95, des_p95 in result.des_checkpoints:
        assert model_p95 == pytest.approx(des_p95, rel=0.35), (
            f"{app} at load {load}: model {model_p95} vs DES {des_p95}"
        )

    # Table IV thresholds are reproduced exactly by the calibrated knees.
    for app in ("xapian", "moses", "img-dnn", "sphinx"):
        profile = lc_profile(app)
        knee_latency = profile.tail_latency_ms(
            1.0, profile.threads, profile.reference_ways
        )
        assert knee_latency == pytest.approx(profile.threshold_ms, rel=0.01)
