"""Figs. 5-6 — allocation snapshots of PARTIES vs ARQ at 30% / 90% load."""

from conftest import emit

from repro.experiments.fig5_fig6_snapshots import render, run_fig5_fig6


def test_fig5_fig6(benchmark):
    snapshots = benchmark.pedantic(run_fig5_fig6, rounds=1, iterations=1)
    emit("fig5_fig6", render(snapshots))

    low, high = snapshots[0.3], snapshots[0.9]

    # Fig. 5 (low load): ARQ keeps a large shared region the BE tenant can
    # exploit; PARTIES has none by construction.
    assert low["arq"].core_share["shared"] > 0.4
    assert low["parties"].core_share["shared"] == 0.0
    assert (
        low["arq"].effective_cores["stream"]
        > low["parties"].effective_cores["stream"]
    )

    # Fig. 6 (high load): ARQ serves Xapian fully (all four threads'
    # worth of cores, ample cache) while — unlike PARTIES, which strips
    # every other partition to its floor — the other applications retain
    # real cache through the shared region.
    assert (
        high["arq"].effective_cores["xapian"]
        >= high["parties"].effective_cores["xapian"] - 0.3
    )
    assert high["arq"].effective_ways["xapian"] > 4.0
    # ...while still operating a shared region (PARTIES has none).
    assert high["arq"].core_share["shared"] > 0.0
    assert high["parties"].core_share["shared"] == 0.0

    # ARQ adapts: Xapian's isolated+shared footprint grows with its load.
    assert (
        high["arq"].effective_cores["xapian"]
        > low["arq"].effective_cores["xapian"]
    )
