"""Table II — Unmanaged on 6/7/8 cores: per-application entropy breakdown."""

from conftest import emit

from repro.experiments.table2_resource_sensitivity import render, run_table2


def test_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("table2", render(rows))

    system = {row.cores: row.values for row in rows if row.application == "System"}
    # Paper shape: E_LC collapses as cores grow (0.64 → 0.23 → 0).
    assert system[6]["E_LC"] > system[7]["E_LC"] > system[8]["E_LC"]
    assert system[8]["E_LC"] < 0.05
    assert system[6]["E_LC"] > 0.4
    # E_S follows (0.55 → 0.19 → 0).
    assert system[6]["E_S"] > system[7]["E_S"] > system[8]["E_S"]
    assert system[8]["E_S"] < 0.1
    # At 8 cores the remaining tolerance becomes positive (paper: 0.23).
    assert system[8]["ReT_i"] > system[6]["ReT_i"]
    # Per-application: at 6 cores every application violates (ReT = 0).
    for row in rows:
        if row.cores == 6 and row.application != "System":
            assert row.values["ReT_i"] == 0.0
            assert row.values["Q_i"] > 0.0
