"""Fig. 11 — Img-dnn sweep with Moses + Sphinx + Stream."""

from conftest import emit

from repro.experiments.fig11_sphinx_mix import (
    high_load_reduction,
    render,
    run_fig11,
)


def test_fig11_panel_20(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs={"moses_sphinx_load": 0.2}, rounds=1, iterations=1
    )
    emit("fig11_panel20", render(result))

    e_s = {name: dict(p) for name, p in result.series("e_s").items()}
    # Low load: ARQ roughly matches PARTIES (paper: "almost the same").
    assert abs(e_s["arq"][0.1] - e_s["parties"][0.1]) < 0.12
    # High load: ARQ pulls ahead (paper: −40.93% on average).
    reductions = high_load_reduction(result)
    assert reductions["e_s_reduction_vs_parties"] < 0.0


def test_fig11_panel_40(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs={"moses_sphinx_load": 0.4}, rounds=1, iterations=1
    )
    emit("fig11_panel40", render(result))

    means = result.mean_over_loads("e_s")
    assert means["arq"] <= means["parties"] + 1e-9
    yields = result.mean_over_loads("yield")
    assert yields["arq"] >= yields["parties"] - 1e-9
