"""Ablations of the design choices DESIGN.md calls out.

* ARQ without the shared region (strict partitions) — loses the sharing
  benefit on the BE side;
* ARQ without entropy rollback — no E_S feedback (pure ReT greed);
* ARQ without the 60 s cooldown — ping-pong susceptibility;
* monitoring-interval sensitivity (§IV-B: 100 ms / 500 ms / 2 s);
* relative-importance sensitivity (RI ∈ {0.5, 0.8, 1.0} in Eq. 7).
"""

import pytest
from conftest import emit

from repro.cluster.collocation import Collocation
from repro.cluster.run import run_collocation
from repro.experiments.common import canonical_mix, make_collocation
from repro.experiments.reporting import ascii_table
from repro.schedulers.arq import ARQScheduler
from repro.workloads.loadgen import FluctuatingLoad

MIX = dict(xapian_load=0.9, moses_load=0.4, imgdnn_load=0.4, be_name="stream")


def _run(collocation, scheduler, duration=120.0, warmup=60.0):
    return run_collocation(collocation, scheduler, duration, warmup)


def test_ablation_shared_region(benchmark):
    """The shared region is what buys ARQ its BE-side efficiency."""
    collocation = canonical_mix(0.3, 0.2, 0.2, be_name="stream")

    def run_both():
        full = _run(collocation, ARQScheduler())
        no_shared = _run(collocation, ARQScheduler(shared_region=False))
        return full, no_shared

    full, no_shared = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_shared_region",
        ascii_table(
            ["variant", "E_LC", "E_BE", "E_S"],
            [
                ["arq (full)", full.mean_e_lc(), full.mean_e_be(), full.mean_e_s()],
                [
                    "arq w/o shared region",
                    no_shared.mean_e_lc(),
                    no_shared.mean_e_be(),
                    no_shared.mean_e_s(),
                ],
            ],
            title="Ablation: ARQ without the shared region (Xapian 30% + Stream)",
        ),
    )
    assert full.mean_e_be() <= no_shared.mean_e_be() + 0.02
    assert full.mean_e_s() <= no_shared.mean_e_s() + 0.02


def test_ablation_rollback_and_cooldown(benchmark):
    """Entropy rollback and the cooldown keep ARQ out of bad corners."""
    trace = FluctuatingLoad()
    collocation = make_collocation(
        {"xapian": trace, "moses": 0.2, "img-dnn": 0.2}, ["stream"]
    )

    def run_variants():
        results = {}
        for label, scheduler in (
            ("full", ARQScheduler()),
            ("no-rollback", ARQScheduler(entropy_rollback=False)),
            ("no-cooldown", ARQScheduler(cooldown_s=0.0)),
        ):
            results[label] = run_collocation(
                collocation, scheduler, trace.duration_s, warmup_s=0.0
            )
        return results

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    emit(
        "ablation_rollback_cooldown",
        ascii_table(
            ["variant", "violations", "E_S", "plan changes"],
            [
                [
                    label,
                    run.violation_count(),
                    run.mean_e_s(),
                    sum(1 for r in run.records if r.plan_changed),
                ]
                for label, run in results.items()
            ],
            title="Ablation: rollback / cooldown under the Fig. 13 trace",
        ),
    )
    # The variants stay functional (no collapse); the full version is not
    # beaten by a large margin by either ablation.
    for label, run in results.items():
        assert run.mean_e_s() < 0.35, label
    assert results["full"].mean_e_s() <= results["no-rollback"].mean_e_s() + 0.05
    assert results["full"].mean_e_s() <= results["no-cooldown"].mean_e_s() + 0.05


def test_ablation_monitoring_interval(benchmark):
    """§IV-B: 500 ms balances reaction time against measurement stability."""
    trace = FluctuatingLoad()

    def run_intervals():
        results = {}
        for epoch_s in (0.1, 0.5, 2.0):
            base = make_collocation(
                {"xapian": trace, "moses": 0.2, "img-dnn": 0.2}, ["stream"]
            )
            collocation = Collocation(
                lc=base.lc,
                be=base.be,
                spec=base.spec,
                epoch_s=epoch_s,
                seed=base.seed,
            )
            results[epoch_s] = run_collocation(
                collocation, ARQScheduler(), trace.duration_s, warmup_s=0.0
            )
        return results

    results = benchmark.pedantic(run_intervals, rounds=1, iterations=1)
    emit(
        "ablation_interval",
        ascii_table(
            ["interval (s)", "violation rate", "E_S"],
            [
                [
                    interval,
                    run.violation_count() / len(run.records),
                    run.mean_e_s(),
                ]
                for interval, run in sorted(results.items())
            ],
            title="Ablation: monitoring interval under the Fig. 13 trace",
        ),
    )
    for run in results.values():
        assert run.mean_e_s() < 0.35


def test_ablation_relative_importance(benchmark):
    """Eq. 7's RI shifts how much the controller values LC over BE."""
    def run_ri():
        results = {}
        for ri in (0.5, 0.8, 1.0):
            base = canonical_mix(0.9, 0.2, 0.2, be_name="stream")
            collocation = Collocation(
                lc=base.lc, be=base.be, relative_importance=ri, seed=base.seed
            )
            results[ri] = _run(collocation, ARQScheduler())
        return results

    results = benchmark.pedantic(run_ri, rounds=1, iterations=1)
    emit(
        "ablation_ri",
        ascii_table(
            ["RI", "E_LC", "E_BE", "E_S"],
            [
                [ri, run.mean_e_lc(), run.mean_e_be(), run.mean_e_s()]
                for ri, run in sorted(results.items())
            ],
            title="Ablation: relative importance (Xapian 90% + Stream)",
        ),
    )
    # Raising RI can only keep E_LC equal or lower (LC protected harder).
    assert results[1.0].mean_e_lc() <= results[0.5].mean_e_lc() + 0.03
