"""Fig. 3 — resource equivalence and isentropic lines."""

from conftest import emit

from repro.experiments.fig3_equivalence import (
    render_fig3a,
    render_fig3b,
    run_fig3a,
    run_fig3b,
)


def test_fig3a(benchmark):
    result = benchmark.pedantic(run_fig3a, rounds=1, iterations=1)
    emit("fig3a", render_fig3a(result))

    # ARQ reaches any achievable entropy level with fewer cores; the paper
    # reads ~2 cores of resource equivalence at E_S = 0.25.
    for target, point in result.equivalences.items():
        if point is not None:
            assert point.saved > 0.0, f"ARQ should save cores at E_S={target}"
    reachable = [p for p in result.equivalences.values() if p is not None]
    assert reachable, "at least one target entropy must be reachable"
    assert max(p.saved for p in reachable) > 0.5


def test_fig3b(benchmark):
    result = benchmark.pedantic(run_fig3b, rounds=1, iterations=1)
    emit("fig3b", render_fig3b(result))

    arq = dict(result.lines["arq"].points)
    unmanaged = dict(result.lines["unmanaged"].points)
    # Where both defined, ARQ needs no more cores than Unmanaged, and at
    # scarce ways it needs strictly fewer (paper: ~2 cores at 8 ways).
    common = sorted(set(arq) & set(unmanaged))
    assert common, "the isentropic lines must overlap somewhere"
    for ways in common:
        assert arq[ways] <= unmanaged[ways] + 0.3
    scarce = [w for w in common if w <= 10]
    if scarce:
        assert any(unmanaged[w] - arq[w] > 0.5 for w in scarce)
